// Package server implements the network serving layer over the storage
// engine: a length-prefixed binary KV protocol with per-connection
// pipelining, a group-commit loop that coalesces concurrent writes into
// one engine batch and a single WAL fsync, token-bucket backpressure,
// connection limits, read/write deadlines, graceful drain on shutdown,
// and live metrics over HTTP.
//
// Wire format (both directions):
//
//	uint32 LE frameLen      // length of everything after these 4 bytes
//	uint32 LE requestID     // echoed verbatim in the response
//	uint8     opcode/status
//	body...                 // opcode-specific, see below
//
// Because every response carries the request ID, a client may keep many
// requests in flight on one connection (pipelining) and match responses
// out of order. Request ID 0 (ConnErrID) is reserved for connection-level
// errors: the server uses it to report that framing was lost before
// hanging up, so clients must never assign it to a request. Request
// bodies use the engine's uvarint length-prefixed byte strings:
//
//	GET        key
//	PUT        key value
//	DELETE     key
//	SCAN       lo hi uvarint(limit)      // limit 0 = server default
//	BATCH      uvarint(n) then n× (uint8 kind, key[, value])  // kind 0=put 1=delete
//	STATS      (empty)
//	PING       (empty)
//	TRACE      key
//	MULTIGET   uvarint(n) then n× key    // batched point reads
//	SCANSTREAM lo hi uvarint(limit)      // server-streamed scan
//	PUTTTL     key value uvarint(ttlMillis)
//	INCR       key varint(delta)         // atomic counter add
//	CAS        key uint8(hasExpected)[, expected] newValue
//	SKETCH     uint8(sub)[, key]         // sub 1=freq(key) 2=card
//
// Response bodies: GET returns the raw value; SCAN returns uint8(more),
// uvarint(count), then count× (key value); STATS returns JSON; TRACE
// returns the JSON-encoded read-path trace (StatusOK even when the key is
// absent — the trace itself reports found/not-found); MULTIGET returns
// uvarint(n), then n× (uint8 found[, value]) aligned with the request's
// keys; INCR returns varint(result); SKETCH returns uvarint(estimate);
// CAS answers StatusConflict on mismatch; error statuses carry the
// message as raw bytes. SCANSTREAM answers with an open-ended sequence of
// SCAN-shaped frames on the request's ID — more=1 means another frame
// follows, the frame with more=0 ends the stream — so a full scan costs
// one request instead of one round trip per page. PROTOCOL.md is the
// complete wire reference; cmd/doccheck cross-checks its opcode table
// against the constants below.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lsmkv/internal/core"
	"lsmkv/internal/kv"
)

// Opcode identifies a request operation.
type Opcode uint8

// Request opcodes.
const (
	OpPing   Opcode = 1
	OpGet    Opcode = 2
	OpPut    Opcode = 3
	OpDelete Opcode = 4
	OpScan   Opcode = 5
	OpBatch  Opcode = 6
	OpStats  Opcode = 7
	// OpTrace is a GET that also returns the read path taken: every run
	// consulted, each filter/fence decision, and cache behavior.
	OpTrace Opcode = 8
	// OpCheckpoint takes an online backup: Key names a directory under
	// the server's checkpoint root; the response Value is the marker
	// JSON (files, bytes, per-shard seqs).
	OpCheckpoint Opcode = 9
	// OpReplSync opens a replication stream: the body is the follower's
	// per-shard watermark vector, and the server answers with an
	// open-ended sequence of REPLFRAME responses (replica.Frame bodies)
	// on this request's ID. The connection should be dedicated — the
	// stream occupies its read loop.
	OpReplSync Opcode = 10
	// OpGetSeq is a read-your-writes GET: the server waits until the
	// key's shard reaches MinSeq before reading.
	OpGetSeq Opcode = 11
	// OpMerkle computes a Merkle summary of the database's logical
	// content at a sequence vector (response Value is replica.Tree
	// JSON); equal trees on primary and follower mean zero divergence.
	OpMerkle Opcode = 12
	// OpMultiGet batches point reads: the body is a counted key list and
	// the response carries found/value slots aligned with it. One frame
	// each way amortizes framing, syscalls, and scheduling across the
	// batch, and the server fans the keys out to their shards in parallel.
	OpMultiGet Opcode = 13
	// OpScanStream is SCAN answered as an open-ended stream of SCAN-shaped
	// frames on this request's ID instead of one bounded page. Like
	// REPLSYNC the stream occupies the connection's read loop until the
	// final (more=0) frame.
	OpScanStream Opcode = 14
	// OpPutTTL is PUT with a time-to-live: the body carries the TTL in
	// milliseconds and the server stamps the absolute expiry at commit.
	// After expiry the key reads as absent and compaction reclaims it.
	OpPutTTL Opcode = 15
	// OpIncr atomically adds a signed delta to the 8-byte LE counter at
	// key (absent keys start at zero) inside the key's group-commit loop;
	// the response body is the resulting value as a signed varint.
	OpIncr Opcode = 16
	// OpCas atomically replaces key's value with a new value if the
	// current value equals the expected one (hasExpected=0 asserts the
	// key is absent). A mismatch answers StatusConflict and writes
	// nothing.
	OpCas Opcode = 17
	// OpSketch queries the server's per-shard write-stream sketches:
	// sub 1 estimates how often key has been written (count-min, never
	// under), sub 2 estimates the distinct keys written (HyperLogLog).
	// The response body is a uvarint estimate.
	OpSketch Opcode = 18
	// opMax bounds the per-opcode metric arrays.
	opMax = 19
)

func (o Opcode) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpTrace:
		return "trace"
	case OpCheckpoint:
		return "checkpoint"
	case OpReplSync:
		return "replsync"
	case OpGetSeq:
		return "getseq"
	case OpMerkle:
		return "merkle"
	case OpMultiGet:
		return "multiget"
	case OpScanStream:
		return "scanstream"
	case OpPutTTL:
		return "putttl"
	case OpIncr:
		return "incr"
	case OpCas:
		return "cas"
	case OpSketch:
		return "sketch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the response disposition.
type Status uint8

// Response statuses.
const (
	StatusOK       Status = 0
	StatusNotFound Status = 1
	// StatusError is a request-level failure; the connection stays usable.
	StatusError Status = 2
	// StatusThrottled means the token bucket rejected the request; the
	// client may retry after backoff.
	StatusThrottled Status = 3
	// StatusShutdown means the server is draining; retry elsewhere/later.
	StatusShutdown Status = 4
	// StatusConflict means a CAS request's expected value did not match
	// the current one; nothing was written. Not transient: retrying the
	// identical request will conflict again until the caller re-reads.
	StatusConflict Status = 5
)

// DefaultMaxFrameBytes bounds a single request or response frame.
const DefaultMaxFrameBytes = 16 << 20

// ConnErrID is the reserved request ID for connection-level error
// responses (framing lost, connection about to close). No request may
// carry it; clients treat a response bearing it as fatal to the
// connection rather than matching it to a pending call.
const ConnErrID uint32 = 0

// frameHeaderLen is the length prefix preceding every frame.
const frameHeaderLen = 4

// payload header: request id (4) + opcode/status (1).
const payloadHeaderLen = 5

// Protocol-level errors.
var (
	// ErrMalformed indicates a frame that does not parse. The connection
	// that produced it is closed: framing is lost.
	ErrMalformed = errors.New("server: malformed frame")
	// ErrFrameTooLarge indicates a frame exceeding the configured bound.
	ErrFrameTooLarge = errors.New("server: frame exceeds size limit")
)

// batch op wire kinds.
const (
	wireBatchPut    = 0
	wireBatchDelete = 1
)

// Request is one decoded client request. Key/Value/Lo/Hi alias the frame
// buffer they were decoded from.
type Request struct {
	ID    uint32
	Op    Opcode
	Key   []byte
	Value []byte
	Lo    []byte
	Hi    []byte
	Limit uint64
	Ops   []core.BatchOp
	// MinSeq is the GETSEQ read-your-writes floor.
	MinSeq uint64
	// Seqs is the per-shard sequence vector: REPLSYNC watermarks, or the
	// MERKLE pin point (empty = current).
	Seqs []uint64
	// Keys is the MULTIGET key batch.
	Keys [][]byte
	// Buckets is the MERKLE bucket count (0 = server default).
	Buckets uint64
	// TTLMillis is the PUTTTL time-to-live in milliseconds.
	TTLMillis uint64
	// Delta is the INCR signed addend.
	Delta int64
	// Expected is the CAS comparand; HasExpected distinguishes an
	// expected-empty value (true, len 0) from expected-absent (false).
	Expected    []byte
	HasExpected bool
	// Sub selects the SKETCH query: SketchFreq or SketchCard.
	Sub uint8
}

// SKETCH sub-query selectors.
const (
	// SketchFreq estimates writes observed for Key (count-min).
	SketchFreq uint8 = 1
	// SketchCard estimates distinct keys written (HyperLogLog).
	SketchCard uint8 = 2
)

// Response is one decoded server response.
type Response struct {
	ID     uint32
	Status Status
	// Value holds the GET value, the STATS JSON, or the error message.
	Value []byte
	// Pairs and More carry SCAN results.
	Pairs []KV
	More  bool
}

// KV is one scan result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// ReadFrame reads one length-prefixed frame payload (the bytes after the
// length word). It returns ErrFrameTooLarge for frames over max and
// ErrMalformed for frames too short to carry a payload header. The
// allocation is bounded by max regardless of input.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, ErrFrameTooLarge
	}
	if n < payloadHeaderLen {
		return nil, ErrMalformed
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// WriteFrame writes the length prefix followed by payload.
func WriteFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendRequest encodes req as a frame payload (without the length word).
func AppendRequest(dst []byte, req *Request) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, req.ID)
	dst = append(dst, byte(req.Op))
	switch req.Op {
	case OpGet, OpDelete, OpTrace:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
	case OpPut:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
		dst = kv.AppendLengthPrefixed(dst, req.Value)
	case OpScan:
		dst = kv.AppendLengthPrefixed(dst, req.Lo)
		dst = kv.AppendLengthPrefixed(dst, req.Hi)
		dst = binary.AppendUvarint(dst, req.Limit)
	case OpBatch:
		dst = binary.AppendUvarint(dst, uint64(len(req.Ops)))
		for _, op := range req.Ops {
			if op.Kind == kv.KindDelete {
				dst = append(dst, wireBatchDelete)
				dst = kv.AppendLengthPrefixed(dst, op.Key)
			} else {
				dst = append(dst, wireBatchPut)
				dst = kv.AppendLengthPrefixed(dst, op.Key)
				dst = kv.AppendLengthPrefixed(dst, op.Value)
			}
		}
	case OpCheckpoint:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
	case OpReplSync:
		dst = appendSeqVector(dst, req.Seqs)
	case OpGetSeq:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
		dst = binary.AppendUvarint(dst, req.MinSeq)
	case OpMerkle:
		dst = binary.AppendUvarint(dst, req.Buckets)
		dst = appendSeqVector(dst, req.Seqs)
	case OpMultiGet:
		dst = binary.AppendUvarint(dst, uint64(len(req.Keys)))
		for _, k := range req.Keys {
			dst = kv.AppendLengthPrefixed(dst, k)
		}
	case OpScanStream:
		dst = kv.AppendLengthPrefixed(dst, req.Lo)
		dst = kv.AppendLengthPrefixed(dst, req.Hi)
		dst = binary.AppendUvarint(dst, req.Limit)
	case OpPutTTL:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
		dst = kv.AppendLengthPrefixed(dst, req.Value)
		dst = binary.AppendUvarint(dst, req.TTLMillis)
	case OpIncr:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
		dst = binary.AppendVarint(dst, req.Delta)
	case OpCas:
		dst = kv.AppendLengthPrefixed(dst, req.Key)
		if req.HasExpected {
			dst = append(dst, 1)
			dst = kv.AppendLengthPrefixed(dst, req.Expected)
		} else {
			dst = append(dst, 0)
		}
		dst = kv.AppendLengthPrefixed(dst, req.Value)
	case OpSketch:
		dst = append(dst, req.Sub)
		if req.Sub == SketchFreq {
			dst = kv.AppendLengthPrefixed(dst, req.Key)
		}
	}
	return dst
}

func appendSeqVector(dst []byte, seqs []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(seqs)))
	for _, s := range seqs {
		dst = binary.AppendUvarint(dst, s)
	}
	return dst
}

// decodeSeqVector parses a uvarint-counted sequence vector with
// allocation bounded by the remaining body.
func decodeSeqVector(body []byte) ([]uint64, []byte, bool) {
	count, w := binary.Uvarint(body)
	if w <= 0 || count > uint64(len(body)+1) {
		return nil, body, false
	}
	body = body[w:]
	seqs := make([]uint64, 0, count)
	for i := uint64(0); i < count; i++ {
		s, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, body, false
		}
		body = body[w:]
		seqs = append(seqs, s)
	}
	return seqs, body, true
}

// DecodeRequest parses a frame payload into a Request. Returned byte
// slices alias payload. Malformed input yields ErrMalformed — never a
// panic, and never an allocation beyond the payload already read.
func DecodeRequest(payload []byte) (Request, error) {
	var req Request
	if len(payload) < payloadHeaderLen {
		return req, ErrMalformed
	}
	req.ID = binary.LittleEndian.Uint32(payload)
	req.Op = Opcode(payload[4])
	body := payload[payloadHeaderLen:]
	var ok bool
	switch req.Op {
	case OpPing, OpStats:
	case OpGet, OpDelete, OpTrace:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
	case OpPut:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
		if req.Value, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
	case OpScan:
		if req.Lo, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
		if req.Hi, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
		var w int
		if req.Limit, w = binary.Uvarint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
	case OpBatch:
		count, w := binary.Uvarint(body)
		if w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
		// Every op consumes at least 2 bytes, so a count beyond that is a
		// lie; checking before allocating bounds the slice by the frame.
		if count > uint64(len(body)/2+1) {
			return req, ErrMalformed
		}
		req.Ops = make([]core.BatchOp, 0, count)
		for i := uint64(0); i < count; i++ {
			if len(body) < 1 {
				return req, ErrMalformed
			}
			kind := body[0]
			body = body[1:]
			var op core.BatchOp
			switch kind {
			case wireBatchPut:
				op.Kind = kv.KindSet
				if op.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(op.Key) == 0 {
					return req, ErrMalformed
				}
				if op.Value, body, ok = kv.DecodeLengthPrefixed(body); !ok {
					return req, ErrMalformed
				}
			case wireBatchDelete:
				op.Kind = kv.KindDelete
				if op.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(op.Key) == 0 {
					return req, ErrMalformed
				}
			default:
				return req, ErrMalformed
			}
			req.Ops = append(req.Ops, op)
		}
	case OpCheckpoint:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
	case OpReplSync:
		if req.Seqs, body, ok = decodeSeqVector(body); !ok {
			return req, ErrMalformed
		}
	case OpGetSeq:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
		var w int
		if req.MinSeq, w = binary.Uvarint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
	case OpMerkle:
		var w int
		if req.Buckets, w = binary.Uvarint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
		if req.Seqs, body, ok = decodeSeqVector(body); !ok {
			return req, ErrMalformed
		}
	case OpMultiGet:
		count, w := binary.Uvarint(body)
		if w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
		// Every key consumes at least 2 bytes (length prefix + one byte —
		// empty keys are rejected below), so a larger count is a lie;
		// checking before allocating bounds the slice by the frame.
		if count > uint64(len(body)/2+1) {
			return req, ErrMalformed
		}
		req.Keys = make([][]byte, 0, count)
		for i := uint64(0); i < count; i++ {
			var k []byte
			if k, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(k) == 0 {
				return req, ErrMalformed
			}
			req.Keys = append(req.Keys, k)
		}
	case OpScanStream:
		if req.Lo, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
		if req.Hi, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
		var w int
		if req.Limit, w = binary.Uvarint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
	case OpPutTTL:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
		if req.Value, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
		var w int
		if req.TTLMillis, w = binary.Uvarint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
	case OpIncr:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
		var w int
		if req.Delta, w = binary.Varint(body); w <= 0 {
			return req, ErrMalformed
		}
		body = body[w:]
	case OpCas:
		if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
			return req, ErrMalformed
		}
		if len(body) < 1 {
			return req, ErrMalformed
		}
		marker := body[0]
		body = body[1:]
		switch marker {
		case 0:
		case 1:
			req.HasExpected = true
			if req.Expected, body, ok = kv.DecodeLengthPrefixed(body); !ok {
				return req, ErrMalformed
			}
			if req.Expected == nil {
				req.Expected = []byte{}
			}
		default:
			return req, ErrMalformed
		}
		if req.Value, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return req, ErrMalformed
		}
	case OpSketch:
		if len(body) < 1 {
			return req, ErrMalformed
		}
		req.Sub = body[0]
		body = body[1:]
		switch req.Sub {
		case SketchFreq:
			if req.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok || len(req.Key) == 0 {
				return req, ErrMalformed
			}
		case SketchCard:
		default:
			return req, ErrMalformed
		}
	default:
		return req, ErrMalformed
	}
	if len(body) != 0 {
		return req, ErrMalformed
	}
	return req, nil
}

// AppendResponse encodes resp as a frame payload (without the length
// word).
func AppendResponse(dst []byte, resp *Response) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, resp.ID)
	dst = append(dst, byte(resp.Status))
	if resp.Pairs != nil || resp.More {
		more := byte(0)
		if resp.More {
			more = 1
		}
		dst = append(dst, more)
		dst = binary.AppendUvarint(dst, uint64(len(resp.Pairs)))
		for _, p := range resp.Pairs {
			dst = kv.AppendLengthPrefixed(dst, p.Key)
			dst = kv.AppendLengthPrefixed(dst, p.Value)
		}
		return dst
	}
	return append(dst, resp.Value...)
}

// DecodeResponse parses a frame payload into a Response. scan selects the
// SCAN body shape (the status byte alone cannot distinguish an empty
// value from an empty result set). Returned slices alias payload.
func DecodeResponse(payload []byte, scan bool) (Response, error) {
	var resp Response
	if len(payload) < payloadHeaderLen {
		return resp, ErrMalformed
	}
	resp.ID = binary.LittleEndian.Uint32(payload)
	resp.Status = Status(payload[4])
	body := payload[payloadHeaderLen:]
	if !scan || resp.Status != StatusOK {
		resp.Value = body
		return resp, nil
	}
	if len(body) < 1 {
		return resp, ErrMalformed
	}
	resp.More = body[0] != 0
	body = body[1:]
	count, w := binary.Uvarint(body)
	if w <= 0 {
		return resp, ErrMalformed
	}
	body = body[w:]
	if count > uint64(len(body)/2+1) {
		return resp, ErrMalformed
	}
	resp.Pairs = make([]KV, 0, count)
	for i := uint64(0); i < count; i++ {
		var p KV
		var ok bool
		if p.Key, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return resp, ErrMalformed
		}
		if p.Value, body, ok = kv.DecodeLengthPrefixed(body); !ok {
			return resp, ErrMalformed
		}
		resp.Pairs = append(resp.Pairs, p)
	}
	if len(body) != 0 {
		return resp, ErrMalformed
	}
	return resp, nil
}

// MULTIGET response value slots.
const (
	wireMultiGetAbsent = 0
	wireMultiGetFound  = 1
)

// AppendMultiGetValues encodes a MULTIGET response body: uvarint count,
// then one (uint8 found[, length-prefixed value]) slot per requested key,
// in request order. A nil value encodes as absent; an empty non-nil value
// round-trips as found-and-empty.
func AppendMultiGetValues(dst []byte, vals [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		if v == nil {
			dst = append(dst, wireMultiGetAbsent)
			continue
		}
		dst = append(dst, wireMultiGetFound)
		dst = kv.AppendLengthPrefixed(dst, v)
	}
	return dst
}

// DecodeMultiGetValues parses a MULTIGET response body. Returned slices
// alias body; absent keys decode as nil entries. The allocation is
// bounded by the body regardless of the claimed count.
func DecodeMultiGetValues(body []byte) ([][]byte, error) {
	count, w := binary.Uvarint(body)
	if w <= 0 {
		return nil, ErrMalformed
	}
	body = body[w:]
	// Every slot consumes at least the found byte.
	if count > uint64(len(body)+1) {
		return nil, ErrMalformed
	}
	vals := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(body) < 1 {
			return nil, ErrMalformed
		}
		found := body[0]
		body = body[1:]
		switch found {
		case wireMultiGetAbsent:
			vals = append(vals, nil)
		case wireMultiGetFound:
			var v []byte
			var ok bool
			if v, body, ok = kv.DecodeLengthPrefixed(body); !ok {
				return nil, ErrMalformed
			}
			if v == nil {
				v = []byte{}
			}
			vals = append(vals, v)
		default:
			return nil, ErrMalformed
		}
	}
	if len(body) != 0 {
		return nil, ErrMalformed
	}
	return vals, nil
}

// ShardSeq locates one acknowledged write in the engine's history: the
// shard that owns it and that shard's sequence watermark after the
// write. Clients pass it to GETSEQ (on any replica) for read-your-writes.
type ShardSeq struct {
	Shard int
	Seq   uint64
}

// AppendSeqAcks encodes the (shard, seq) coordinates carried in a write
// acknowledgment's body: uvarint count, then uvarint shard / uvarint seq
// per entry. Pre-replication clients ignore ack bodies, so the addition
// is backward compatible.
func AppendSeqAcks(dst []byte, acks []ShardSeq) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(acks)))
	for _, a := range acks {
		dst = binary.AppendUvarint(dst, uint64(a.Shard))
		dst = binary.AppendUvarint(dst, a.Seq)
	}
	return dst
}

// DecodeSeqAcks parses a write acknowledgment body. An empty body
// decodes as no coordinates (a server without seq acks).
func DecodeSeqAcks(body []byte) ([]ShardSeq, error) {
	if len(body) == 0 {
		return nil, nil
	}
	count, w := binary.Uvarint(body)
	if w <= 0 || count > uint64(len(body)+1) {
		return nil, ErrMalformed
	}
	body = body[w:]
	acks := make([]ShardSeq, 0, count)
	for i := uint64(0); i < count; i++ {
		shard, w := binary.Uvarint(body)
		if w <= 0 || shard > 1<<20 {
			return nil, ErrMalformed
		}
		body = body[w:]
		seq, w := binary.Uvarint(body)
		if w <= 0 {
			return nil, ErrMalformed
		}
		body = body[w:]
		acks = append(acks, ShardSeq{Shard: int(shard), Seq: seq})
	}
	if len(body) != 0 {
		return nil, ErrMalformed
	}
	return acks, nil
}

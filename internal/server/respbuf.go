// Pooled response buffers: every response a connection queues is encoded
// into a buffer borrowed from a process-wide sync.Pool and returned by
// the write loop once the frame is on the wire (or the connection is
// known dead). In steady state the serving layer re-encodes responses
// into the same handful of buffers instead of allocating one per
// response — the wire-side half of the zero-allocation read path.

package server

import (
	"sync"
	"sync/atomic"
)

// respBufMaxRetain caps the capacity the pool keeps. A response that had
// to grow past it (a big SCAN page, a huge STATS body) is let go to the
// GC instead of pinning that much memory in the pool forever.
const respBufMaxRetain = 1 << 20

// respBuf is one pooled response payload. The struct (not the slice) is
// what cycles through the pool, so recycling never allocates.
type respBuf struct {
	b []byte
}

// Pool telemetry, surfaced in /metrics: allocs counts pool misses (a
// fresh buffer had to be made), drops counts oversized buffers released
// to the GC. Near-zero growth of both under load means the response path
// is allocation-free.
var (
	respBufAllocs atomic.Int64
	respBufDrops  atomic.Int64
)

var respBufPool sync.Pool

func getRespBuf() *respBuf {
	if rb, ok := respBufPool.Get().(*respBuf); ok {
		rb.b = rb.b[:0]
		return rb
	}
	respBufAllocs.Add(1)
	return &respBuf{}
}

func putRespBuf(rb *respBuf) {
	if cap(rb.b) > respBufMaxRetain {
		respBufDrops.Add(1)
		return
	}
	rb.b = rb.b[:0]
	respBufPool.Put(rb)
}

package server_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lsmkv/internal/server"
	"lsmkv/internal/vfs"
)

// BenchmarkGroupCommit measures what the group-commit loop buys: N
// concurrent writers over one pipelined connection, with coalescing
// enabled (groups grow toward MaxCommitOps) versus disabled
// (MaxCommitOps=1, every write pays its own fsync). The filesystem
// charges 200µs per sync, a cheap-SSD fsync, so fsyncs/op translates
// directly into throughput. Run with `make bench-server`.
func BenchmarkGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 8, 64} {
		for _, tc := range []struct {
			name   string
			maxOps int
		}{
			{"coalesced", 0}, // config default (4096)
			{"perOpSync", 1},
		} {
			b.Run(fmt.Sprintf("%s/writers=%d", tc.name, writers), func(b *testing.B) {
				runCommitBench(b, writers, tc.maxOps)
			})
		}
	}
}

func runCommitBench(b *testing.B, writers, maxOps int) {
	fs := slowSyncFS{FS: vfs.NewMem(), delay: 200 * time.Microsecond}
	srv, db := startServer(b, fs, func(c *server.Config) {
		if maxOps > 0 {
			c.MaxCommitOps = maxOps
		}
	})
	cl := dialTest(b, srv, nil)

	before := db.Stats()
	start := time.Now()
	b.ResetTimer()

	var wg sync.WaitGroup
	value := []byte("benchmark-value-0123456789abcdef")
	for w := 0; w < writers; w++ {
		n := b.N / writers
		if w < b.N%writers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("b%02d-%08d", w, i))
				if err := cl.Put(key, value); err != nil {
					b.Error(err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	elapsed := time.Since(start)

	after := db.Stats()
	fsyncs := after.WALSyncs - before.WALSyncs
	b.ReportMetric(float64(fsyncs)/float64(b.N), "fsyncs/op")
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
}

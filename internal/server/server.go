package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lsmkv/internal/checkpoint"
	"lsmkv/internal/core"
	"lsmkv/internal/iostat"
	"lsmkv/internal/replica"
	"lsmkv/internal/sketch"
	"lsmkv/internal/tuner"
)

// Engine is the storage surface the server fronts. Both *core.DB and the
// public *lsmkv.DB satisfy it.
type Engine interface {
	Get(key []byte) ([]byte, error)
	// GetTraced is Get with a read-path trace (the TRACE opcode); the
	// trace is valid even when the error is the engine's not-found.
	GetTraced(key []byte) ([]byte, *iostat.Trace, error)
	Scan(lo, hi []byte, fn func(key, value []byte) bool) error
	ApplyBatch(ops []core.BatchOp, sync bool) error
	Stats() iostat.Snapshot
	// Latencies returns engine-level per-operation latency summaries
	// (nil when the engine is not tracking latency).
	Latencies() map[string]iostat.LatencySummary
	// Events returns the engine's retained lifecycle events, oldest first.
	Events() []iostat.Event
	Flush() error
}

// ShardedEngine is the optional upgrade interface a keyspace-sharded
// engine (the public *lsmkv.DB) exposes. When Config.DB implements it and
// reports more than one shard, the server routes point writes to
// per-shard group-commit loops, splits BATCH requests into per-shard
// sub-batches, and publishes per-shard counter snapshots in /metrics and
// STATS.
type ShardedEngine interface {
	Engine
	// NumShards returns the engine's shard count.
	NumShards() int
	// ShardOf returns the shard index owning key.
	ShardOf(key []byte) int
	// ApplyShardBatch applies ops — all owned by shard i — atomically on
	// that shard.
	ApplyShardBatch(i int, ops []core.BatchOp, sync bool) error
	// ShardStats returns each shard's counter snapshot, indexed by shard.
	ShardStats() []iostat.Snapshot
}

// SeqEngine is the optional interface an engine with per-shard sequence
// watermarks exposes (the public *lsmkv.DB). It unlocks sequence-carrying
// write acks, the GETSEQ read-your-writes opcode, and the engine_seq
// field in STATS//metrics.
type SeqEngine interface {
	Engine
	// LastSeqs returns the per-shard applied sequence watermarks.
	LastSeqs() []uint64
	// WaitForSeq blocks until shard's watermark reaches seq or timeout.
	WaitForSeq(shard int, seq uint64, timeout time.Duration) error
}

// CheckpointEngine is the optional interface for engines that support
// online backups (the CHECKPOINT opcode).
type CheckpointEngine interface {
	Checkpoint(dstDir string) (checkpoint.Marker, error)
}

// MerkleEngine is the optional interface for engines that can summarize
// their logical content for divergence checks (the MERKLE opcode).
type MerkleEngine interface {
	MerkleAt(buckets int, seqs []uint64) (*replica.Tree, error)
}

// AppendGetter is the optional interface for engines whose point reads
// can append the value into a caller-supplied buffer (core, shard, and
// the public facade all do). The server uses it to encode GET responses
// straight into pooled response buffers — the wire side of the
// zero-allocation read path.
type AppendGetter interface {
	// GetAppend appends the value to dst and returns the extended slice;
	// on any error (including not-found) dst is returned unchanged.
	GetAppend(key, dst []byte) ([]byte, error)
}

// MultiGetter is the optional interface for engines that serve batched
// point reads natively (the MULTIGET opcode). The public *lsmkv.DB
// implements it with per-shard parallel fan-out; engines without it get
// a sequential per-key fallback.
type MultiGetter interface {
	// MultiGet returns values aligned with keys; nil entries mean absent.
	MultiGet(keys [][]byte) ([][]byte, error)
}

// TunerEngine is the optional interface for engines running the online
// self-tuner (the public *lsmkv.DB). It surfaces per-shard tuner status
// in STATS//metrics and powers `lsmctl tune status`.
type TunerEngine interface {
	// TunerStatus returns one status per shard tuner; nil when the tuner
	// is not running.
	TunerStatus() []tuner.Status
}

// Config parameterizes a Server. The zero value of every field except DB
// selects a sensible default.
type Config struct {
	// DB is the engine to serve (required).
	DB Engine
	// MaxConns bounds concurrent connections; excess accepts are closed
	// immediately. Default 1024.
	MaxConns int
	// MaxFrameBytes bounds request and response frames. Default 16 MiB.
	MaxFrameBytes int
	// IdleTimeout closes connections with no complete request for this
	// long. Default 5 minutes.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response flush. Default 30 seconds.
	WriteTimeout time.Duration
	// RatePerSec, when positive, enables token-bucket backpressure at
	// that many requests per second across all connections.
	RatePerSec float64
	// Burst is the token bucket capacity. Default max(16, RatePerSec).
	Burst int
	// MaxThrottleDelay is the longest a request waits for a token before
	// being shed with StatusThrottled. Default 1 second.
	MaxThrottleDelay time.Duration
	// SyncWrites fsyncs each commit group before acknowledging — full
	// durability at one fsync per group, not per write. Default off (the
	// engine's own WALSync option still applies if set).
	SyncWrites bool
	// MaxCommitOps bounds the ops folded into one engine batch. Default
	// 4096.
	MaxCommitOps int
	// MaxScanResults bounds pairs per SCAN response (the client sees
	// More=true and continues from the last key). Default 4096.
	MaxScanResults int
	// Repl, when set, serves REPLSYNC streams from this primary-side
	// shipper. The caller owns its lifecycle and must have wired it to the
	// engine's commit hook.
	Repl *replica.Primary
	// Follower, when set, is this server's replication loop pulling from a
	// primary; its status appears in STATS//metrics. The caller owns its
	// lifecycle.
	Follower *replica.Follower
	// ReadOnly rejects PUT/DELETE/BATCH — the posture of a follower, whose
	// only writer is the replication stream applying below the protocol.
	ReadOnly bool
	// CheckpointDir, when non-empty, enables the CHECKPOINT opcode:
	// checkpoint names resolve to subdirectories of it.
	CheckpointDir string
	// Logf receives server event logs when set.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if c.DB == nil {
		return c, errors.New("server: Config.DB is required")
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Burst <= 0 {
		c.Burst = 16
		if int(c.RatePerSec) > c.Burst {
			c.Burst = int(c.RatePerSec)
		}
	}
	if c.MaxThrottleDelay <= 0 {
		c.MaxThrottleDelay = time.Second
	}
	if c.MaxCommitOps <= 0 {
		c.MaxCommitOps = 4096
	}
	if c.MaxScanResults <= 0 {
		c.MaxScanResults = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Server serves the KV protocol over TCP. Create with New, start with
// Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	// committers hold one group-commit loop per shard (a single one for
	// unsharded engines); sharded is non-nil when cfg.DB reports more
	// than one shard, and routes point writes and splits batches.
	committers []*committer
	sharded    ShardedEngine // nil for single-shard engines
	// sketches hold one write-stream sketch set per shard (aligned with
	// committers), fed from each commit loop and queried by SKETCH.
	sketches []*sketch.Set
	// Optional engine capabilities, nil when cfg.DB lacks them.
	seqEng    SeqEngine
	ckptEng   CheckpointEngine
	merkleEng MerkleEngine
	tunerEng  TunerEngine
	multiEng  MultiGetter
	appendEng AppendGetter
	bucket    *TokenBucket // nil when unlimited
	// events records serving-layer incidents (sheds, rejected
	// connections, drain); engine events live in the engine's own ring.
	events *iostat.EventLog

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining atomic.Bool
	started  atomic.Bool
	connWG   sync.WaitGroup
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		events:  iostat.NewEventLog(0),
		conns:   make(map[*conn]struct{}),
	}
	if sq, ok := cfg.DB.(SeqEngine); ok {
		s.seqEng = sq
	}
	if ce, ok := cfg.DB.(CheckpointEngine); ok {
		s.ckptEng = ce
	}
	if me, ok := cfg.DB.(MerkleEngine); ok {
		s.merkleEng = me
	}
	if te, ok := cfg.DB.(TunerEngine); ok {
		s.tunerEng = te
	}
	if mg, ok := cfg.DB.(MultiGetter); ok {
		s.multiEng = mg
	}
	if ag, ok := cfg.DB.(AppendGetter); ok {
		s.appendEng = ag
	}
	if se, ok := cfg.DB.(ShardedEngine); ok && se.NumShards() > 1 {
		s.sharded = se
		for i := 0; i < se.NumShards(); i++ {
			i := i
			c := newCommitter(
				func(ops []core.BatchOp, sync bool) error {
					return se.ApplyShardBatch(i, ops, sync)
				},
				cfg.MaxCommitOps, cfg.SyncWrites, s.metrics)
			if s.seqEng != nil {
				c.lastSeq = func() uint64 { return s.seqEng.LastSeqs()[i] }
			}
			s.committers = append(s.committers, c)
		}
	} else {
		c := newCommitter(cfg.DB.ApplyBatch, cfg.MaxCommitOps, cfg.SyncWrites, s.metrics)
		if s.seqEng != nil {
			c.lastSeq = func() uint64 { return s.seqEng.LastSeqs()[0] }
		}
		s.committers = []*committer{c}
	}
	s.sketches = make([]*sketch.Set, len(s.committers))
	for i, c := range s.committers {
		set := sketch.NewSet()
		s.sketches[i] = set
		// cfg.DB.Get routes by key, so even a per-shard committer's RMW
		// reads land on the right shard.
		c.get = cfg.DB.Get
		c.now = func() int64 { return time.Now().UnixNano() }
		c.observe = func(ops []core.BatchOp) {
			for _, op := range ops {
				set.Observe(op.Key)
			}
		}
	}
	if cfg.RatePerSec > 0 {
		s.bucket = NewTokenBucket(cfg.RatePerSec, cfg.Burst)
	}
	return s, nil
}

// Metrics exposes the live server counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Events returns the serving layer's retained incident events, oldest
// first (sheds, rejected connections, drain).
func (s *Server) Events() []iostat.Event { return s.events.Events() }

// Addr returns the listener address once serving ("" before).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.mu.Unlock()
	if s.started.CompareAndSwap(false, true) {
		for _, c := range s.committers {
			c.start()
		}
	}
	s.cfg.Logf("server: listening on %s", ln.Addr())
	var acceptDelay time.Duration // backoff for transient accept errors
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			// Transient failures (ECONNABORTED, EMFILE, ...) must not
			// kill the accept loop while connections and the committer
			// are live: back off and retry, as net/http does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else {
					acceptDelay *= 2
				}
				if acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				s.cfg.Logf("server: accept error: %v; retrying in %v", err, acceptDelay)
				time.Sleep(acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		s.metrics.ConnsAccepted.Add(1)
		if !s.admit(nc) {
			continue
		}
	}
}

// admit registers a new connection, enforcing MaxConns and drain state.
func (s *Server) admit(nc net.Conn) bool {
	s.mu.Lock()
	if s.draining.Load() || len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.metrics.ConnsRejected.Add(1)
		s.events.Add(iostat.Event{
			Type: iostat.EventConnRejected, FromLevel: -1, ToLevel: -1,
			Detail: nc.RemoteAddr().String(),
		})
		nc.Close()
		return false
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.connWG.Add(1)
	s.mu.Unlock()
	s.metrics.ConnsActive.Add(1)
	go c.run()
	return true
}

// removeConn unregisters a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.metrics.ConnsActive.Add(-1)
	s.connWG.Done()
}

// Shutdown drains the server: it stops accepting, wakes every reader so
// no new requests are decoded, waits for all in-flight requests to be
// answered and their responses written, then stops the commit loop and
// flushes the engine. Acknowledged writes are never dropped. ctx bounds
// the wait; on expiry remaining connections are severed and the error
// reported.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return errors.New("server: already shut down")
	}
	s.events.Add(iostat.Event{Type: iostat.EventDrain, FromLevel: -1, ToLevel: -1})
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.beginDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.started.Load() {
		for _, c := range s.committers {
			c.stop()
		}
	}
	if err := s.cfg.DB.Flush(); err != nil && drainErr == nil {
		drainErr = err
	}
	s.cfg.Logf("server: drained")
	return drainErr
}

package server_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"lsmkv/internal/iostat"
	"lsmkv/internal/server"
	"lsmkv/internal/vfs"
)

// TestTraceOpcode round-trips a read-path trace over the wire: hit,
// miss, and a post-flush hit that must show sorted-run decisions.
func TestTraceOpcode(t *testing.T) {
	srv, db := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tr, err := cl.Trace([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Found || tr.Source != "memtable" {
		t.Fatalf("memtable hit mis-traced over the wire: %+v", tr)
	}

	// A miss is StatusOK with a trace, not an error: the trace explains
	// the miss, which is exactly what the operator asked for.
	tr, err = cl.Trace([]byte("absent"))
	if err != nil {
		t.Fatalf("trace of absent key should not error: %v", err)
	}
	if tr.Found || tr.Tombstone {
		t.Fatalf("absent key mis-traced: %+v", tr)
	}

	// After a flush the same key's trace must walk the tree.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err = cl.Trace([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Found || len(tr.Runs) == 0 {
		t.Fatalf("post-flush trace shows no runs: %+v", tr)
	}
	if tr.Runs[len(tr.Runs)-1].Decision != iostat.DecisionProbed {
		t.Fatalf("finding run not probed: %+v", tr.Runs)
	}
}

// TestMetricsPercentiles checks that /metrics carries per-opcode latency
// quantiles for the server and per-operation histograms for the engine.
func TestMetricsPercentiles(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	for i := 0; i < 32; i++ {
		if err := cl.Put([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Get([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var payload struct {
		Server          server.Snapshot                  `json:"server"`
		EngineLatencies map[string]iostat.LatencySummary `json:"engine_latencies"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	for _, op := range []string{"get", "put"} {
		s, ok := payload.Server.Ops[op]
		if !ok {
			t.Fatalf("no server %s summary: %v", op, payload.Server.Ops)
		}
		if s.Count < 32 || s.P50Us > s.P99Us || s.P99Us > s.P999Us || s.MaxUs <= 0 {
			t.Fatalf("server %s summary implausible: %+v", op, s)
		}
	}
	// Engine-side: reads arrive as Gets, writes as group-committed
	// batches, so the engine histograms are keyed get/batch here.
	for _, op := range []string{"get", "batch"} {
		e, ok := payload.EngineLatencies[op]
		if !ok {
			t.Fatalf("no engine %s summary: %v", op, payload.EngineLatencies)
		}
		if e.Count == 0 || e.MaxUs <= 0 {
			t.Fatalf("engine %s summary implausible: %+v", op, e)
		}
	}
}

// TestEventsEndpoint exercises /events: the engine ring carries flush
// events, and the server ring records the drain.
func TestEventsEndpoint(t *testing.T) {
	srv, db := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	h := srv.MetricsHandler()

	fetch := func() (out struct {
		Server []iostat.Event `json:"server"`
		Engine []iostat.Event `json:"engine"`
	}) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
		if rec.Code != 200 {
			t.Fatalf("/events: %d", rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("events JSON: %v\n%s", err, rec.Body.String())
		}
		return out
	}

	ev := fetch()
	var flushes int
	for _, e := range ev.Engine {
		if e.Type == iostat.EventFlush {
			flushes++
		}
	}
	if flushes == 0 {
		t.Fatalf("no flush events in engine ring: %+v", ev.Engine)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ev = fetch()
	var drains int
	for _, e := range ev.Server {
		if e.Type == iostat.EventDrain {
			drains++
		}
	}
	if drains != 1 {
		t.Fatalf("want one drain event in server ring, got %d: %+v", drains, ev.Server)
	}
}

package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"lsmkv/internal/core"
)

func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	payload := AppendRequest(nil, &req)
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	got, err := ReadFrame(&buf, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(got)
	if err != nil {
		t.Fatalf("decode %v: %v", req.Op, err)
	}
	return dec
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpStats},
		{ID: 3, Op: OpGet, Key: []byte("k")},
		{ID: 4, Op: OpDelete, Key: []byte("gone")},
		{ID: 5, Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		{ID: 6, Op: OpPut, Key: []byte("k"), Value: nil},
		{ID: 7, Op: OpScan, Lo: []byte("a"), Hi: []byte("z"), Limit: 42},
		{ID: 8, Op: OpScan, Lo: nil, Hi: nil, Limit: 0},
		{ID: 9, Op: OpBatch, Ops: []core.BatchOp{
			core.PutOp([]byte("a"), []byte("1")),
			core.DeleteOp([]byte("b")),
			core.PutOp([]byte("c"), nil),
		}},
		{ID: 10, Op: OpMultiGet, Keys: [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}},
		{ID: 11, Op: OpScanStream, Lo: []byte("a"), Hi: []byte("z"), Limit: 7},
		{ID: 12, Op: OpScanStream, Lo: nil, Hi: nil, Limit: 0},
	}
	for _, want := range cases {
		got := roundTripRequest(t, want)
		if got.ID != want.ID || got.Op != want.Op {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) ||
			!bytes.Equal(got.Lo, want.Lo) || !bytes.Equal(got.Hi, want.Hi) || got.Limit != want.Limit {
			t.Fatalf("body mismatch: got %+v want %+v", got, want)
		}
		if len(got.Ops) != len(want.Ops) {
			t.Fatalf("ops mismatch: got %d want %d", len(got.Ops), len(want.Ops))
		}
		for i := range got.Ops {
			if got.Ops[i].Kind != want.Ops[i].Kind ||
				!bytes.Equal(got.Ops[i].Key, want.Ops[i].Key) ||
				!bytes.Equal(got.Ops[i].Value, want.Ops[i].Value) {
				t.Fatalf("op %d mismatch: got %+v want %+v", i, got.Ops[i], want.Ops[i])
			}
		}
		if len(got.Keys) != len(want.Keys) {
			t.Fatalf("keys mismatch: got %d want %d", len(got.Keys), len(want.Keys))
		}
		for i := range got.Keys {
			if !bytes.Equal(got.Keys[i], want.Keys[i]) {
				t.Fatalf("key %d mismatch: got %q want %q", i, got.Keys[i], want.Keys[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		resp Response
		scan bool
	}{
		{Response{ID: 1, Status: StatusOK, Value: []byte("v")}, false},
		{Response{ID: 2, Status: StatusNotFound}, false},
		{Response{ID: 3, Status: StatusError, Value: []byte("boom")}, false},
		{Response{ID: 4, Status: StatusOK, Pairs: []KV{
			{Key: []byte("a"), Value: []byte("1")},
			{Key: []byte("b"), Value: nil},
		}, More: true}, true},
		{Response{ID: 5, Status: StatusOK, Pairs: []KV{}}, true},
	}
	for _, tc := range cases {
		payload := AppendResponse(nil, &tc.resp)
		got, err := DecodeResponse(payload, tc.scan)
		if err != nil {
			t.Fatalf("decode id %d: %v", tc.resp.ID, err)
		}
		if got.ID != tc.resp.ID || got.Status != tc.resp.Status || got.More != tc.resp.More {
			t.Fatalf("header mismatch: got %+v want %+v", got, tc.resp)
		}
		if len(got.Pairs) != len(tc.resp.Pairs) {
			t.Fatalf("pairs mismatch: got %d want %d", len(got.Pairs), len(tc.resp.Pairs))
		}
		for i := range got.Pairs {
			if !bytes.Equal(got.Pairs[i].Key, tc.resp.Pairs[i].Key) ||
				!bytes.Equal(got.Pairs[i].Value, tc.resp.Pairs[i].Value) {
				t.Fatalf("pair %d mismatch", i)
			}
		}
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"short header":       {1, 2, 3},
		"unknown opcode":     {0, 0, 0, 0, 99},
		"get missing key":    {0, 0, 0, 0, byte(OpGet)},
		"get empty key":      append([]byte{0, 0, 0, 0, byte(OpGet)}, 0),
		"put missing value":  append([]byte{0, 0, 0, 0, byte(OpPut)}, 1, 'k'),
		"scan missing limit": append([]byte{0, 0, 0, 0, byte(OpScan)}, 1, 'a', 1, 'z'),
		"ping trailing junk": append([]byte{0, 0, 0, 0, byte(OpPing)}, 0xFF),
		"batch lying count":  append([]byte{0, 0, 0, 0, byte(OpBatch)}, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F),
		"batch bad kind":     append([]byte{0, 0, 0, 0, byte(OpBatch)}, 1, 7, 1, 'k'),
		"batch truncated":    append([]byte{0, 0, 0, 0, byte(OpBatch)}, 2, 0, 1, 'k', 0),
		"key length overrun": append([]byte{0, 0, 0, 0, byte(OpGet)}, 200),

		"multiget missing count": {0, 0, 0, 0, byte(OpMultiGet)},
		"multiget lying count":   append([]byte{0, 0, 0, 0, byte(OpMultiGet)}, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F),
		"multiget empty key":     append([]byte{0, 0, 0, 0, byte(OpMultiGet)}, 1, 0),
		"multiget truncated key": append([]byte{0, 0, 0, 0, byte(OpMultiGet)}, 2, 1, 'a', 5, 'b'),
		"multiget trailing junk": append([]byte{0, 0, 0, 0, byte(OpMultiGet)}, 1, 1, 'k', 0xAA),

		"scanstream missing limit": append([]byte{0, 0, 0, 0, byte(OpScanStream)}, 1, 'a', 1, 'z'),
		"scanstream truncated hi":  append([]byte{0, 0, 0, 0, byte(OpScanStream)}, 1, 'a', 9, 'z'),
		"scanstream trailing junk": append([]byte{0, 0, 0, 0, byte(OpScanStream)}, 0, 0, 0, 1),
	}
	for name, payload := range cases {
		if _, err := DecodeRequest(payload); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

// TestMultiGetValuesRoundTrip pins the MULTIGET response body: values
// round trip aligned and the absent (nil) versus present-but-empty
// ([]byte{}) distinction survives the wire.
func TestMultiGetValuesRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{nil},
		{[]byte("v")},
		{nil, {}, []byte("value"), nil, []byte("x")},
	}
	for _, want := range cases {
		got, err := DecodeMultiGetValues(AppendMultiGetValues(nil, want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("count mismatch: got %d want %d", len(got), len(want))
		}
		for i := range want {
			if (got[i] == nil) != (want[i] == nil) {
				t.Fatalf("slot %d absent/present changed: got %v want %v", i, got[i], want[i])
			}
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("slot %d value changed: got %q want %q", i, got[i], want[i])
			}
		}
	}
}

func TestDecodeMultiGetValuesMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"lying count":     {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
		"missing marker":  {1},
		"bad marker":      {1, 9},
		"truncated value": {1, 1, 5, 'v'},
		"trailing junk":   {1, 0, 0xAA},
	}
	for name, body := range cases {
		if _, err := DecodeMultiGetValues(body); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Over-limit length must fail before allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A frame too short for the payload header is malformed.
	binary.LittleEndian.PutUint32(hdr[:], 2)
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 0, 0)), 1<<20); !errors.Is(err, ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
	// A truncated body is an unexpected EOF, not a hang or panic.
	binary.LittleEndian.PutUint32(hdr[:], 100)
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

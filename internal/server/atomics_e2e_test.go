package server_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"lsmkv/internal/client"
	"lsmkv/internal/vfs"
)

// TestIncrConcurrent: 8 writers hammer one counter through independent
// connections; the committer must serialize the read-modify-write so the
// returned values are exactly a permutation of 1..N — the same set a
// serial oracle would hand out, in some order.
func TestIncrConcurrent(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			srv, _ := startShardedServer(t, vfs.NewMem(), shards)

			const writers = 8
			const perWriter = 50
			results := make([][]int64, writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := client.Dial(srv.Addr(), nil)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					for i := 0; i < perWriter; i++ {
						n, err := cl.Incr([]byte("hits"), 1)
						if err != nil {
							t.Errorf("writer %d incr: %v", w, err)
							return
						}
						results[w] = append(results[w], n)
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			var all []int64
			for _, rs := range results {
				// Within one connection the counter must be monotone: a
				// writer never sees its own increment go backwards.
				for i := 1; i < len(rs); i++ {
					if rs[i] <= rs[i-1] {
						t.Fatalf("per-writer regression: %d then %d", rs[i-1], rs[i])
					}
				}
				all = append(all, rs...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i, v := range all {
				if v != int64(i+1) {
					t.Fatalf("returned values are not a permutation of 1..%d: position %d holds %d", writers*perWriter, i, v)
				}
			}

			cl := dialTest(t, srv, nil)
			v, err := cl.Get([]byte("hits"))
			if err != nil || len(v) != 8 {
				t.Fatalf("final read: %q, %v", v, err)
			}
			if got := int64(binary.LittleEndian.Uint64(v)); got != writers*perWriter {
				t.Fatalf("final counter = %d, want %d", got, writers*perWriter)
			}
		})
	}
}

// TestCasConcurrent: 8 writers each push through a fixed number of
// successful CAS increments on a shared decimal cell, retrying on
// conflict. Lost updates would leave the final value short.
func TestCasConcurrent(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			srv, _ := startShardedServer(t, vfs.NewMem(), shards)

			const writers = 8
			const perWriter = 20
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := client.Dial(srv.Addr(), nil)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					for done := 0; done < perWriter; {
						cur, err := cl.Get([]byte("cell"))
						var expected []byte
						n := 0
						switch {
						case err == nil:
							if n, err = atoiBytes(cur); err != nil {
								t.Errorf("writer %d: bad cell %q", w, cur)
								return
							}
							expected = cur
						case errors.Is(err, client.ErrNotFound):
							expected = nil // assert absence
						default:
							t.Errorf("writer %d get: %v", w, err)
							return
						}
						err = cl.Cas([]byte("cell"), expected, []byte(fmt.Sprint(n+1)))
						switch {
						case err == nil:
							done++
						case errors.Is(err, client.ErrCASMismatch):
							// lost the race; re-read and retry
						default:
							t.Errorf("writer %d cas: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			cl := dialTest(t, srv, nil)
			v, err := cl.Get([]byte("cell"))
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := atoiBytes(v); n != writers*perWriter {
				t.Fatalf("final cell = %q, want %d successful CAS increments", v, writers*perWriter)
			}
		})
	}
}

func atoiBytes(b []byte) (int, error) {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("not a number: %q", b)
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// TestCasErrors: conflict paths map to the non-transient ErrCASMismatch
// and a failed CAS never mutates the cell.
func TestCasErrors(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	// Absence assertion on an absent key creates.
	if err := cl.Cas([]byte("k"), nil, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Absence assertion on a present key conflicts.
	if err := cl.Cas([]byte("k"), nil, []byte("v2")); !errors.Is(err, client.ErrCASMismatch) {
		t.Fatalf("want ErrCASMismatch, got %v", err)
	}
	// Stale expected conflicts.
	if err := cl.Cas([]byte("k"), []byte("stale"), []byte("v2")); !errors.Is(err, client.ErrCASMismatch) {
		t.Fatalf("want ErrCASMismatch, got %v", err)
	}
	if v, err := cl.Get([]byte("k")); err != nil || string(v) != "v1" {
		t.Fatalf("failed CAS mutated the cell: %q, %v", v, err)
	}
	// Matching expected swaps.
	if err := cl.Cas([]byte("k"), []byte("v1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// INCR of a non-counter value is rejected without committing.
	if _, err := cl.Incr([]byte("k"), 1); err == nil {
		t.Fatal("incr accepted a non-counter value")
	}
	if v, _ := cl.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("failed INCR mutated the cell: %q", v)
	}
}

// TestPutTTLOverWire: a TTL'd key is served until its deadline and then
// reads as absent; the server stamps the absolute expiry from the
// client-supplied duration.
func TestPutTTLOverWire(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	if err := cl.PutTTL([]byte("lease"), []byte("held"), 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, err := cl.Get([]byte("lease")); err != nil || string(v) != "held" {
		t.Fatalf("pre-expiry get = %q, %v", v, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := cl.Get([]byte("lease"))
		if errors.Is(err, client.ErrNotFound) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("key still served long past its TTL")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSketchOverWire: the per-shard write sketches answer frequency and
// cardinality queries over the wire and surface in STATS.
func TestSketchOverWire(t *testing.T) {
	srv, _ := startShardedServer(t, vfs.NewMem(), 2)
	cl := dialTest(t, srv, nil)

	const distinct = 200
	for i := 0; i < distinct; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := cl.Put([]byte("hot"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	freq, err := cl.SketchFreq([]byte("hot"))
	if err != nil {
		t.Fatal(err)
	}
	// Count-min overestimates but never undercounts.
	if freq < 50 {
		t.Fatalf("hot-key frequency estimate %d, want >= 50", freq)
	}
	cold, err := cl.SketchFreq([]byte("k000"))
	if err != nil {
		t.Fatal(err)
	}
	if cold > 10 {
		t.Fatalf("cold-key frequency estimate %d, want ~1", cold)
	}

	card, err := cl.SketchCard()
	if err != nil {
		t.Fatal(err)
	}
	if card < distinct*9/10 || card > distinct*12/10 {
		t.Fatalf("cardinality estimate %d, want ~%d", card, distinct+1)
	}

	body, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Sketches []struct {
			DistinctKeys uint64 `json:"distinct_keys"`
		} `json:"sketches"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Sketches) != 2 {
		t.Fatalf("STATS carries %d sketch entries, want one per shard", len(payload.Sketches))
	}
	var sum uint64
	for _, s := range payload.Sketches {
		sum += s.DistinctKeys
	}
	if sum != card {
		t.Fatalf("STATS sketch sum %d != SKETCH card %d", sum, card)
	}
}

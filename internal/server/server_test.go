package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lsmkv/internal/client"
	"lsmkv/internal/core"
	"lsmkv/internal/server"
	"lsmkv/internal/vfs"
)

// slowSyncFS injects a fixed latency into every file Sync, modeling a
// real disk's fsync cost on top of the in-memory filesystem so that
// group-commit coalescing shows up in wall-clock throughput.
type slowSyncFS struct {
	vfs.FS
	delay time.Duration
}

type slowSyncFile struct {
	vfs.File
	delay time.Duration
}

func (s slowSyncFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{f, s.delay}, nil
}

func (s slowSyncFS) Open(name string) (vfs.File, error) {
	f, err := s.FS.Open(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{f, s.delay}, nil
}

func (s slowSyncFS) OpenReadWrite(name string) (vfs.File, error) {
	f, err := s.FS.OpenReadWrite(name)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{f, s.delay}, nil
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

func testDBOpts(fs vfs.FS) core.Options {
	return core.Options{
		Dir:           "db",
		FS:            fs,
		MemtableBytes: 4 << 20,
		TrackLatency:  true,
	}
}

// startServer opens an engine on fs and serves it on a loopback
// listener. mutate, when non-nil, adjusts the config before server.New.
func startServer(t testing.TB, fs vfs.FS, mutate func(*server.Config)) (*server.Server, *core.DB) {
	t.Helper()
	db, err := core.Open(testDBOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{DB: db, SyncWrites: true}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // idempotent-ish: second call errors, ignored
		<-serveDone
		db.Close()
	})
	// Wait for the listener address to be visible.
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	return srv, db
}

func dialTest(t testing.TB, srv *server.Server, opts *client.Options) *client.Client {
	t.Helper()
	cl, err := client.Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServerBasicOps(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get alpha = %q, %v", v, err)
	}
	if _, err := cl.Get([]byte("missing")); err != client.ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := cl.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get([]byte("alpha")); err != client.ErrNotFound {
		t.Fatalf("deleted key: want ErrNotFound, got %v", err)
	}
	if err := cl.Batch([]client.Op{
		client.PutOp([]byte("c1"), []byte("x")),
		client.PutOp([]byte("c2"), []byte("y")),
		client.DeleteOp([]byte("beta")),
	}); err != nil {
		t.Fatal(err)
	}
	pairs, more, err := cl.Scan([]byte("a"), []byte("z"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if more || len(pairs) != 2 {
		t.Fatalf("scan: %d pairs (more=%v), want 2", len(pairs), more)
	}
	if string(pairs[0].Key) != "c1" || string(pairs[1].Key) != "c2" {
		t.Fatalf("scan keys: %q %q", pairs[0].Key, pairs[1].Key)
	}
	body, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"server", "engine"} {
		if _, ok := payload[key]; !ok {
			t.Fatalf("stats missing %q section", key)
		}
	}
}

func TestScanPagination(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), func(c *server.Config) { c.MaxScanResults = 10 })
	cl := dialTest(t, srv, nil)
	const n = 37
	var ops []client.Op
	for i := 0; i < n; i++ {
		ops = append(ops, client.PutOp([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))))
	}
	if err := cl.Batch(ops); err != nil {
		t.Fatal(err)
	}
	pairs, more, err := cl.Scan([]byte("k"), []byte("l"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !more || len(pairs) != 10 {
		t.Fatalf("page 1: %d pairs more=%v, want 10 true", len(pairs), more)
	}
	seen := 0
	err = cl.ScanAll([]byte("k"), []byte("l"), func(k, v []byte) bool {
		want := fmt.Sprintf("k%03d", seen)
		if string(k) != want {
			t.Fatalf("ScanAll order: got %q want %q", k, want)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("ScanAll saw %d keys, want %d", seen, n)
	}
}

// TestPipelinedThroughput is the acceptance E2E: concurrent pipelined
// clients must sustain >= 10x the throughput of one-request-per-round-
// trip operation. The engine runs on a filesystem with a 1ms fsync and
// the server acknowledges only after the commit group is synced, so the
// sequential client pays one fsync per write while the pipelined load
// amortizes each fsync across an entire commit group.
func TestPipelinedThroughput(t *testing.T) {
	fs := slowSyncFS{FS: vfs.NewMem(), delay: time.Millisecond}
	srv, _ := startServer(t, fs, nil)
	cl := dialTest(t, srv, nil)

	// Sequential: wait for each ack before issuing the next request.
	const seqOps = 100
	seqStart := time.Now()
	for i := 0; i < seqOps; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("seq%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	seqRate := float64(seqOps) / time.Since(seqStart).Seconds()

	// Pipelined: 64 concurrent writers share the same connection.
	const writers, perWriter = 64, 50
	before := srv.Metrics().Snapshot()
	pipeStart := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := cl.Put([]byte(fmt.Sprintf("p%02d-%04d", w, i)), []byte("v")); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	pipeRate := float64(writers*perWriter) / time.Since(pipeStart).Seconds()

	ratio := pipeRate / seqRate
	t.Logf("sequential %.0f ops/s, pipelined %.0f ops/s, ratio %.1fx", seqRate, pipeRate, ratio)
	if ratio < 10 {
		t.Fatalf("pipelined/sequential throughput ratio %.1fx, want >= 10x", ratio)
	}

	// Group commit must actually be coalescing: far fewer commit batches
	// than ops during the pipelined phase.
	after := srv.Metrics().Snapshot()
	batches := after.CommitBatches - before.CommitBatches
	ops := after.CommitOps - before.CommitOps
	if ops != writers*perWriter {
		t.Fatalf("committed %d ops, want %d", ops, writers*perWriter)
	}
	if mean := float64(ops) / float64(batches); mean < 4 {
		t.Fatalf("mean commit batch size %.1f, want >= 4 (no coalescing?)", mean)
	}
}

// TestShutdownDrains: a drain mid-load answers every in-flight request
// and loses no acknowledged write — the zero-dropped-acks guarantee.
func TestShutdownDrains(t *testing.T) {
	srv, db := startServer(t, vfs.NewMem(), nil)

	const writers = 16
	var (
		ackMu sync.Mutex
		acked []string
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr(), nil)
			if err != nil {
				return
			}
			defer cl.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("drain-w%02d-%06d", w, i)
				if err := cl.Put([]byte(key), []byte(key)); err != nil {
					return // drain reached this connection
				}
				ackMu.Lock()
				acked = append(acked, key)
				ackMu.Unlock()
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond) // let load build
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged before drain; test proves nothing")
	}
	missing := 0
	for _, key := range acked {
		v, err := db.Get([]byte(key))
		if err != nil || string(v) != key {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acknowledged writes missing after drain", missing, len(acked))
	}
	t.Logf("drained with %d acknowledged writes, all present", len(acked))
}

func TestConnectionLimit(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), func(c *server.Config) { c.MaxConns = 2 })
	c1 := dialTest(t, srv, nil)
	c2 := dialTest(t, srv, nil)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	// The third connection is accepted then immediately closed; its
	// first operation must fail (no retries configured).
	c3, err := client.Dial(srv.Addr(), nil)
	if err == nil {
		defer c3.Close()
		if err := c3.Ping(); err == nil {
			t.Fatal("third connection served beyond MaxConns=2")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().ConnsRejected.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ConnsRejected never incremented")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackpressureThrottles(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), func(c *server.Config) {
		c.RatePerSec = 200
		c.Burst = 10
		c.MaxThrottleDelay = 5 * time.Millisecond
	})

	// One connection per worker: the token-bucket sleep happens in each
	// connection's read loop, so a single connection self-paces to the
	// refill rate and is never shed. Shedding needs aggregate demand
	// across connections to outrun the bucket.
	var wg sync.WaitGroup
	var throttled, okCount int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		cl := dialTest(t, srv, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := cl.Get([]byte("nope"))
				mu.Lock()
				if err == client.ErrThrottled {
					throttled++
				} else if err == client.ErrNotFound {
					okCount++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if throttled == 0 {
		t.Fatalf("400 rapid requests at 200/s never throttled (ok=%d)", okCount)
	}
	if okCount == 0 {
		t.Fatal("every request throttled; bucket should admit the burst")
	}
	if got := srv.Metrics().Throttled.Load(); got == 0 {
		t.Fatal("metrics.Throttled not incremented")
	}
	t.Logf("ok=%d throttled=%d", okCount, throttled)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)
	cl := dialTest(t, srv, nil)
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	h := srv.MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	var payload struct {
		Server server.Snapshot `json:"server"`
		Engine struct {
			WALSyncs   int64
			BatchedOps int64
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if payload.Server.ConnsAccepted < 1 || payload.Server.CommitBatches < 1 {
		t.Fatalf("metrics look empty: %+v", payload.Server)
	}
	if payload.Engine.WALSyncs < 1 || payload.Engine.BatchedOps < 1 {
		t.Fatalf("engine counters missing: %+v", payload.Engine)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz while serving: %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz while draining: %d, want 503", rec.Code)
	}
}

// TestMalformedBodyKeepsConnection: a parseable frame with a bad body
// gets an error response and the connection keeps serving; a broken
// frame closes the connection.
func TestMalformedFrames(t *testing.T) {
	srv, _ := startServer(t, vfs.NewMem(), nil)

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Valid frame, unknown opcode -> server.StatusError, connection survives.
	bad := []byte{9, 0, 0, 0, 7, 0, 0, 0, 99, 1, 2, 3, 4}
	if _, err := nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	payload, err := server.ReadFrame(nc, server.DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := server.DecodeResponse(payload, false)
	if err != nil || resp.Status != server.StatusError {
		t.Fatalf("want server.StatusError response, got %+v, %v", resp, err)
	}
	// Still serving: a ping round-trips.
	ping := server.AppendRequest(nil, &server.Request{ID: 5, Op: server.OpPing})
	frame := append([]byte{byte(len(ping)), 0, 0, 0}, ping...)
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload, err = server.ReadFrame(nc, server.DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := server.DecodeResponse(payload, false); resp.ID != 5 || resp.Status != server.StatusOK {
		t.Fatalf("ping after malformed body: %+v", resp)
	}

	// Oversized frame length -> error response, then close.
	if _, err := nc.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err != nil {
		t.Fatal(err)
	}
	payload, err = server.ReadFrame(nc, server.DefaultMaxFrameBytes)
	if err == nil {
		if resp, _ := server.DecodeResponse(payload, false); resp.Status != server.StatusError {
			t.Fatalf("want server.StatusError for oversized frame, got %+v", resp)
		}
		// Connection must now be closed by the server.
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := server.ReadFrame(nc, server.DefaultMaxFrameBytes); err == nil {
			t.Fatal("connection still open after framing loss")
		}
	}
	if got := srv.Metrics().DecodeErrors.Load(); got < 2 {
		t.Fatalf("DecodeErrors = %d, want >= 2", got)
	}
}

package server

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"

	"lsmkv/internal/iostat"
	"lsmkv/internal/replica"
	"lsmkv/internal/tuner"
)

// commitHistBuckets sizes the commit-batch histogram: bucket i counts
// commits of [2^i, 2^(i+1)) ops, the last bucket is open-ended.
const commitHistBuckets = 11

// Metrics is the server's live instrument: connection lifecycle, request
// counts and latencies per opcode, backpressure outcomes, and the
// group-commit loop's coalescing behavior. All fields are safe for
// concurrent use; read them through Snapshot.
type Metrics struct {
	start time.Time

	ConnsAccepted atomic.Int64
	ConnsRejected atomic.Int64 // over the connection limit
	ConnsActive   atomic.Int64

	// Inflight counts requests decoded but not yet answered.
	Inflight atomic.Int64
	// Throttled counts requests shed by the token bucket.
	Throttled atomic.Int64
	// ThrottleWaitNs accumulates time writers spent waiting for tokens.
	ThrottleWaitNs atomic.Int64
	// DecodeErrors counts malformed frames.
	DecodeErrors atomic.Int64

	BytesIn  atomic.Int64
	BytesOut atomic.Int64

	// Per-opcode request counts and service-latency histograms. The
	// histograms are lock-free; quantiles come out via Snapshot.
	Requests [opMax]atomic.Int64
	Latency  [opMax]iostat.Histogram

	// CommitQueue is the number of write requests waiting for the
	// group-commit loop (gauge).
	CommitQueue atomic.Int64
	// CommitBatches / CommitOps describe coalescing: CommitOps over
	// CommitBatches is the mean commit group size.
	CommitBatches atomic.Int64
	CommitOps     atomic.Int64
	// BatchSizeHist buckets commit group sizes by power of two.
	BatchSizeHist [commitHistBuckets]atomic.Int64
}

func newMetrics() *Metrics { return &Metrics{start: time.Now()} }

// observeOp records one served request of the given opcode.
func (m *Metrics) observeOp(op Opcode, dur time.Duration) {
	if op < opMax {
		m.Requests[op].Add(1)
		m.Latency[op].Observe(dur)
	}
	m.Inflight.Add(-1)
}

// observeCommit records one group commit of n ops.
func (m *Metrics) observeCommit(n int) {
	m.CommitBatches.Add(1)
	m.CommitOps.Add(int64(n))
	b := 0
	for v := n; v > 1 && b < commitHistBuckets-1; v >>= 1 {
		b++
	}
	m.BatchSizeHist[b].Add(1)
}

// OpSnapshot is one opcode's served-request summary: the count plus the
// latency distribution (mean and p50/p90/p99/p999/max, microseconds).
// The latency is service latency as the server sees it — decode to
// response-queued — so it includes commit-group and throttle queueing.
type OpSnapshot = iostat.LatencySummary

// Snapshot is a point-in-time copy of the server metrics, shaped for
// JSON rendering on /metrics.
type Snapshot struct {
	UptimeSec      float64 `json:"uptime_sec"`
	ConnsAccepted  int64   `json:"conns_accepted"`
	ConnsRejected  int64   `json:"conns_rejected"`
	ConnsActive    int64   `json:"conns_active"`
	Inflight       int64   `json:"inflight"`
	Throttled      int64   `json:"throttled"`
	ThrottleWaitMs float64 `json:"throttle_wait_ms"`
	DecodeErrors   int64   `json:"decode_errors"`
	BytesIn        int64   `json:"bytes_in"`
	BytesOut       int64   `json:"bytes_out"`
	// RespBufAllocs counts response-buffer pool misses (fresh buffers
	// made); RespBufDrops counts oversized buffers released to the GC
	// instead of retained. Both near-flat under steady load means the
	// response path is allocation-free (see DESIGN.md).
	RespBufAllocs int64                 `json:"resp_buf_allocs"`
	RespBufDrops  int64                 `json:"resp_buf_drops"`
	Ops           map[string]OpSnapshot `json:"ops"`
	CommitQueue   int64                 `json:"commit_queue"`
	CommitBatches int64                 `json:"commit_batches"`
	CommitOps     int64                 `json:"commit_ops"`
	MeanBatchSize float64               `json:"mean_batch_size"`
	BatchSizeHist map[string]int64      `json:"batch_size_hist"`
}

// Snapshot copies the current metric values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		UptimeSec:      time.Since(m.start).Seconds(),
		ConnsAccepted:  m.ConnsAccepted.Load(),
		ConnsRejected:  m.ConnsRejected.Load(),
		ConnsActive:    m.ConnsActive.Load(),
		Inflight:       m.Inflight.Load(),
		Throttled:      m.Throttled.Load(),
		ThrottleWaitMs: float64(m.ThrottleWaitNs.Load()) / 1e6,
		DecodeErrors:   m.DecodeErrors.Load(),
		BytesIn:        m.BytesIn.Load(),
		BytesOut:       m.BytesOut.Load(),
		RespBufAllocs:  respBufAllocs.Load(),
		RespBufDrops:   respBufDrops.Load(),
		Ops:            map[string]OpSnapshot{},
		CommitQueue:    m.CommitQueue.Load(),
		CommitBatches:  m.CommitBatches.Load(),
		CommitOps:      m.CommitOps.Load(),
		BatchSizeHist:  map[string]int64{},
	}
	if s.CommitBatches > 0 {
		s.MeanBatchSize = float64(s.CommitOps) / float64(s.CommitBatches)
	}
	for op := Opcode(1); op < opMax; op++ {
		if m.Requests[op].Load() == 0 {
			continue
		}
		s.Ops[op.String()] = m.Latency[op].Snapshot().Summary()
	}
	lo := 1
	for i := 0; i < commitHistBuckets; i++ {
		if v := m.BatchSizeHist[i].Load(); v != 0 {
			key := fmt1(lo)
			s.BatchSizeHist[key] = v
		}
		lo <<= 1
	}
	return s
}

func fmt1(lo int) string {
	// Bucket labels: "1", "2", "4", ... "1024+" for the open tail.
	const tail = 1 << (commitHistBuckets - 1)
	if lo >= tail {
		return itoa(tail) + "+"
	}
	return itoa(lo)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// eventsPayload groups the two event rings on the wire: the serving
// layer's incidents and the engine's lifecycle events.
type eventsPayload struct {
	Server []iostat.Event `json:"server"`
	Engine []iostat.Event `json:"engine"`
}

// metricsPayload is the /metrics response body (also the STATS opcode's).
type metricsPayload struct {
	Server Snapshot        `json:"server"`
	Engine iostat.Snapshot `json:"engine"`
	// EngineLatencies carries the engine's own per-operation histograms
	// (present only when the engine tracks latency). Unlike Server.Ops,
	// these exclude network, queueing, and commit-group wait. The "stall"
	// key, when present, times hard write stalls — pair it with the
	// engine's WriteStalls/WriteSlowdowns counters to diagnose
	// backpressure (see OPERATIONS.md).
	EngineLatencies map[string]iostat.LatencySummary `json:"engine_latencies,omitempty"`
	// EngineShards carries each shard's own counter snapshot, indexed by
	// shard, when the engine is keyspace-sharded (Engine above stays the
	// aggregate). A skewed shard shows up here as one entry's flush and
	// stall counters running ahead of its peers'.
	EngineShards []iostat.Snapshot `json:"engine_shards,omitempty"`
	// EngineSeqs carries the per-shard applied sequence watermarks when
	// the engine exposes them — the replication coordinate system: compare
	// a primary's and follower's vectors to see lag shard by shard.
	EngineSeqs []uint64 `json:"engine_seq,omitempty"`
	// Replication is this server's follower-loop status (set only on
	// followers): connection state, applied vs primary watermarks, lag.
	Replication *replica.FollowerStatus `json:"replication,omitempty"`
	// ReplPrimary is the primary-side shipper's status (set only when
	// replication serving is enabled): live streams, backlog, floors.
	ReplPrimary *replica.PrimaryStatus `json:"repl_primary,omitempty"`
	// Tuner carries each shard tuner's status when the engine's online
	// self-tuner is running: the live knob set, the design point it is
	// steering toward, the latest signal sample, and its recent applied
	// moves (see TUNING.md and `lsmctl tune status`).
	Tuner []tuner.Status `json:"tuner,omitempty"`
	// Sketches carries each shard's write-stream sketch summary (the
	// HyperLogLog distinct-key estimate); per-key frequency goes through
	// the SKETCH opcode, which can name the key.
	Sketches []SketchSnapshot `json:"sketches,omitempty"`
	// Events holds both bounded event rings, oldest first. Against a
	// sharded engine every engine event carries the shard that recorded
	// it.
	Events eventsPayload `json:"events"`
}

func (s *Server) payload() metricsPayload {
	p := metricsPayload{
		Server:          s.metrics.Snapshot(),
		Engine:          s.cfg.DB.Stats(),
		EngineLatencies: s.cfg.DB.Latencies(),
		Events: eventsPayload{
			Server: s.Events(),
			Engine: s.cfg.DB.Events(),
		},
	}
	if s.sharded != nil {
		p.EngineShards = s.sharded.ShardStats()
	}
	if s.seqEng != nil {
		p.EngineSeqs = s.seqEng.LastSeqs()
	}
	if s.cfg.Follower != nil {
		st := s.cfg.Follower.Status()
		p.Replication = &st
	}
	if s.cfg.Repl != nil {
		st := s.cfg.Repl.Status()
		p.ReplPrimary = &st
	}
	if s.tunerEng != nil {
		p.Tuner = s.tunerEng.TunerStatus()
	}
	for _, set := range s.sketches {
		p.Sketches = append(p.Sketches, SketchSnapshot{DistinctKeys: set.Card()})
	}
	return p
}

// SketchSnapshot is one shard's write-stream sketch summary in STATS
// and /metrics.
type SketchSnapshot struct {
	DistinctKeys uint64 `json:"distinct_keys"`
}

// MetricsHandler returns an HTTP handler exposing /metrics (JSON of
// server counters, per-opcode latency quantiles, the engine's iostat
// snapshot, and both event rings), /events (the event rings alone), and
// /healthz (200 while serving, 503 while draining).
func (s *Server) MetricsHandler() http.Handler {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.payload())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, eventsPayload{Server: s.Events(), Engine: s.cfg.DB.Events()})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	return mux
}

package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"lsmkv"
	"lsmkv/internal/checkpoint"
	"lsmkv/internal/client"
	"lsmkv/internal/replica"
	"lsmkv/internal/server"
)

// serveEngine starts a server for cfg on a loopback listener and returns
// it with an explicit shutdown func (no t.Cleanup: the test asserts on
// goroutine counts after an ordered teardown).
func serveEngine(t *testing.T, cfg server.Config) (*server.Server, func()) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	return srv, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-serveDone
	}
}

// TestReplicationE2E is the acceptance path: a primary under concurrent
// writes takes an online CHECKPOINT; a follower bootstraps from it,
// streams the WAL, serves read-your-writes GETSEQ, and proves zero
// divergence by Merkle comparison. Acked-but-unshipped writes are absent
// from the follower only until the stream resumes — never torn.
func TestReplicationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end replication test")
	}
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()

	primDir := t.TempDir()
	ckptRoot := t.TempDir() // dedicated checkpoint root (sweepable)

	prim, err := lsmkv.Open(primDir, &lsmkv.Options{Shards: 2, SyncWAL: false})
	if err != nil {
		t.Fatal(err)
	}
	primary := replica.NewPrimary(replica.PrimaryConfig{
		Shards:            prim.NumShards(),
		LastSeqs:          prim.LastSeqs,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	prim.SetCommitHook(func(shard int, firstSeq uint64, count int, payload []byte) {
		primary.OnCommit(shard, firstSeq, count, payload)
	})
	primSrv, stopPrimSrv := serveEngine(t, server.Config{
		DB: prim, SyncWrites: true,
		Repl:          primary,
		CheckpointDir: ckptRoot,
		Logf:          t.Logf,
	})

	cl, err := client.Dial(primSrv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Seed some history, then checkpoint while a background writer keeps
	// committing — the backup must not require pausing writes.
	for i := 0; i < 300; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("seed%05d", i)), []byte(fmt.Sprintf("sv%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	writerStop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		wcl, err := client.Dial(primSrv.Addr(), nil)
		if err != nil {
			t.Error(err)
			return
		}
		defer wcl.Close()
		for i := 0; ; i++ {
			select {
			case <-writerStop:
				return
			default:
			}
			if err := wcl.Put([]byte(fmt.Sprintf("bg%06d", i)), []byte(fmt.Sprintf("bv%d", i))); err != nil {
				t.Errorf("background write: %v", err)
				return
			}
		}
	}()

	markerJSON, err := cl.Checkpoint("boot")
	if err != nil {
		t.Fatal(err)
	}
	var marker checkpoint.Marker
	if err := json.Unmarshal(markerJSON, &marker); err != nil {
		t.Fatalf("marker %q: %v", markerJSON, err)
	}
	if marker.Shards != 2 || marker.Files == 0 {
		t.Fatalf("checkpoint marker: %+v", marker)
	}

	// Let more writes land after the checkpoint, then quiesce.
	time.Sleep(100 * time.Millisecond)
	close(writerStop)
	writerWG.Wait()

	// Bootstrap the follower from the checkpoint directory: it opens as a
	// normal database at the marker's watermark, then streams the rest.
	fol, err := lsmkv.Open(filepath.Join(ckptRoot, "boot"), nil)
	if err != nil {
		t.Fatalf("follower bootstrap from checkpoint: %v", err)
	}
	if got := fol.LastSeqs(); len(got) != 2 {
		t.Fatalf("follower adopted %d shards, want 2", len(got))
	}
	follower := replica.NewFollower(replica.FollowerConfig{
		Addr:         primSrv.Addr(),
		DB:           fol,
		RetryBackoff: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	follower.Start()
	folSrv, stopFolSrv := serveEngine(t, server.Config{
		DB: fol, SyncWrites: true,
		Follower: follower,
		ReadOnly: true,
		Logf:     t.Logf,
	})
	folCl, err := client.Dial(folSrv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.WaitCaughtUp(15 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Read-your-writes: the primary's write ack carries a sequence
	// coordinate; GETSEQ on the follower waits for it, then serves.
	acks, err := cl.PutSeq([]byte("ryw-key"), []byte("ryw-value"))
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != 1 || acks[0].Seq == 0 {
		t.Fatalf("write acks: %+v", acks)
	}
	v, err := folCl.GetAtSeq([]byte("ryw-key"), acks[0].Seq)
	if err != nil || string(v) != "ryw-value" {
		t.Fatalf("read-your-writes on follower: %q, %v", v, err)
	}

	// Zero divergence: the follower's Merkle tree at the primary's exact
	// sequence vector has an identical root.
	primTree, err := cl.Merkle(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	folTree, err := folCl.Merkle(primTree.Buckets, primTree.Seqs)
	if err != nil {
		t.Fatal(err)
	}
	if primTree.Root != folTree.Root {
		diff, _ := replica.DiffBuckets(primTree, folTree)
		t.Fatalf("replica diverged in %d buckets (entries %d vs %d)", len(diff), primTree.Entries, folTree.Entries)
	}
	if primTree.Entries == 0 {
		t.Fatal("merkle compared empty trees")
	}

	// The follower rejects direct writes.
	if err := folCl.Put([]byte("x"), []byte("y")); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted a write: %v", err)
	}

	// engine_seq and replication status surface in STATS on both sides.
	var primStats, folStats struct {
		EngineSeqs  []uint64        `json:"engine_seq"`
		Replication json.RawMessage `json:"replication"`
		ReplPrimary json.RawMessage `json:"repl_primary"`
	}
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &primStats); err != nil {
		t.Fatal(err)
	}
	if len(primStats.EngineSeqs) != 2 || primStats.ReplPrimary == nil {
		t.Fatalf("primary stats missing replication fields: %s", raw)
	}
	raw, err = folCl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &folStats); err != nil {
		t.Fatal(err)
	}
	if len(folStats.EngineSeqs) != 2 || folStats.Replication == nil {
		t.Fatalf("follower stats missing replication fields: %s", raw)
	}

	// Acked-but-unshipped: with the stream stopped, a new primary write is
	// acknowledged but absent on the follower — absent, not torn.
	follower.Stop()
	acks2, err := cl.BatchSeq([]client.Op{
		client.PutOp([]byte("unshipped-a"), []byte("ua")),
		client.PutOp([]byte("unshipped-b"), []byte("ub")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(acks2) == 0 {
		t.Fatalf("batch acks: %+v", acks2)
	}
	if _, err := folCl.Get([]byte("unshipped-a")); err != client.ErrNotFound {
		t.Fatalf("unshipped write visible on follower: %v", err)
	}

	// Resuming the stream converges the follower; nothing is lost.
	follower2 := replica.NewFollower(replica.FollowerConfig{
		Addr:         primSrv.Addr(),
		DB:           fol,
		RetryBackoff: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	follower2.Start()
	if err := follower2.WaitCaughtUp(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"unshipped-a": "ua", "unshipped-b": "ub"} {
		v, err := folCl.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("after resume, follower %s = %q, %v", k, v, err)
		}
	}

	// Ordered teardown, then the goroutine-leak assertion.
	cl.Close()
	folCl.Close()
	follower2.Stop()
	stopFolSrv()
	stopPrimSrv()
	primary.Close()
	prim.SetCommitHook(nil)
	if err := fol.Close(); err != nil {
		t.Fatal(err)
	}
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d at start, %d after teardown\n%s",
				baseGoroutines, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"lsmkv/internal/core"
	"lsmkv/internal/iostat"
)

// conn is one client connection. Three goroutines cooperate to give
// pipelining without unbounded buffering:
//
//   - readLoop decodes frames; reads (GET/SCAN/STATS/PING) execute
//     inline, writes are handed to the server-wide group committer and a
//     pending-ack token is queued on acks.
//   - ackLoop awaits each write's commit outcome in submission order and
//     emits its response.
//   - writeLoop serializes responses from out, flushing once the queue
//     goes momentarily idle so pipelined responses share syscalls.
//
// Responses carry request IDs, so reads and writes may complete out of
// order relative to each other; writes are acknowledged only after their
// commit group is applied (and fsynced when SyncWrites is on). A client
// that wants read-your-writes on one connection waits for the write ack
// before issuing the read.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	out  chan *respBuf
	acks chan *pendingWrite

	// stop closes when the connection is going away — on drain or when the
	// write side breaks. Replication streams (which occupy the read loop
	// and never see the read deadline) select on it to terminate.
	stop     chan struct{}
	stopOnce sync.Once

	dmu      sync.Mutex // guards read-deadline arming vs drain
	draining bool
}

// pendingWrite tracks one write awaiting its commit group — or, for a
// BATCH spanning shards, awaiting every involved shard's commit group.
// The ack goes out only after all of them complete; the first error wins.
type pendingWrite struct {
	id    uint32
	op    Opcode
	start time.Time
	reqs  []*commitReq
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		bw:   bufio.NewWriterSize(nc, 64<<10),
		out:  make(chan *respBuf, 256),
		acks: make(chan *pendingWrite, 1024),
		stop: make(chan struct{}),
	}
}

// signalStop closes the connection's stop channel (idempotent).
func (c *conn) signalStop() {
	c.stopOnce.Do(func() { close(c.stop) })
}

func (c *conn) run() {
	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)
	go c.ackLoop()
	c.readLoop()
	// readLoop is the only sender on acks; ackLoop drains what remains
	// (every queued write still gets its response) then closes out, and
	// writeLoop flushes before exiting. That ordering is the drain
	// guarantee: no acknowledged-or-accepted request is dropped.
	close(c.acks)
	<-writerDone
	c.nc.Close()
	c.srv.removeConn(c)
}

// beginDrain stops this connection from decoding further requests:
// in-flight ones still complete and their responses are written.
func (c *conn) beginDrain() {
	c.dmu.Lock()
	c.draining = true
	c.nc.SetReadDeadline(time.Now())
	c.dmu.Unlock()
	c.signalStop()
}

// armReadDeadline sets the idle deadline unless the connection is
// draining (in which case the now-deadline must stay in force).
func (c *conn) armReadDeadline() bool {
	c.dmu.Lock()
	defer c.dmu.Unlock()
	if c.draining {
		return false
	}
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
	return true
}

func (c *conn) readLoop() {
	for {
		if !c.armReadDeadline() {
			return
		}
		payload, err := ReadFrame(c.br, c.srv.cfg.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrMalformed) {
				// Framing is lost; tell the client why on the reserved
				// connection-level ID, then hang up.
				c.srv.metrics.DecodeErrors.Add(1)
				c.send(&Response{ID: ConnErrID, Status: StatusError, Value: []byte(err.Error())})
			}
			return
		}
		c.srv.metrics.BytesIn.Add(int64(len(payload) + frameHeaderLen))
		req, err := DecodeRequest(payload)
		if err != nil {
			// Frame boundary intact, body malformed: answer and carry on.
			c.srv.metrics.DecodeErrors.Add(1)
			c.send(&Response{ID: req.ID, Status: StatusError, Value: []byte(err.Error())})
			continue
		}
		c.dispatch(&req)
	}
}

func (c *conn) dispatch(req *Request) {
	m := c.srv.metrics
	m.Inflight.Add(1)
	start := time.Now()

	if c.srv.bucket != nil && req.Op != OpPing {
		wait, ok := c.srv.bucket.Reserve(c.srv.cfg.MaxThrottleDelay)
		if !ok {
			m.Throttled.Add(1)
			c.srv.events.Add(iostat.Event{
				Type: iostat.EventThrottle, FromLevel: -1, ToLevel: -1,
				Detail: req.Op.String(),
			})
			m.observeOp(req.Op, time.Since(start))
			c.send(&Response{ID: req.ID, Status: StatusThrottled, Value: []byte("rate limit exceeded")})
			return
		}
		if wait > 0 {
			// Sleeping in the read loop is the backpressure: this
			// connection stops feeding the server until its debt clears.
			m.ThrottleWaitNs.Add(int64(wait))
			time.Sleep(wait)
		}
	}

	switch req.Op {
	case OpPing:
		c.finishRead(req, start, &Response{ID: req.ID, Status: StatusOK})
	case OpGet:
		c.handleGet(req, start)
	case OpMultiGet:
		c.handleMultiGet(req, start)
	case OpScan:
		c.handleScan(req, start)
	case OpScanStream:
		c.handleScanStream(req, start)
	case OpStats:
		c.handleStats(req, start)
	case OpTrace:
		c.handleTrace(req, start)
	case OpGetSeq:
		c.handleGetSeq(req, start)
	case OpCheckpoint:
		c.handleCheckpoint(req, start)
	case OpMerkle:
		c.handleMerkle(req, start)
	case OpReplSync:
		c.handleReplSync(req, start)
	case OpSketch:
		c.handleSketch(req, start)
	case OpPut:
		c.submitWrite(req, start, []core.BatchOp{core.PutOp(req.Key, req.Value)})
	case OpPutTTL:
		// The absolute expiry is stamped server-side at dispatch, so
		// clients never need a synchronized clock — only a duration.
		exp := time.Now().UnixNano() + int64(req.TTLMillis)*int64(time.Millisecond)
		c.submitWrite(req, start, []core.BatchOp{core.PutTTLOp(req.Key, req.Value, exp)})
	case OpDelete:
		c.submitWrite(req, start, []core.BatchOp{core.DeleteOp(req.Key)})
	case OpBatch:
		c.submitWrite(req, start, req.Ops)
	case OpIncr, OpCas:
		c.submitRMW(req, start)
	}
}

// finishRead records metrics for an inline-served request and sends its
// response.
func (c *conn) finishRead(req *Request, start time.Time, resp *Response) {
	c.srv.metrics.observeOp(req.Op, time.Since(start))
	c.send(resp)
}

func (c *conn) handleGet(req *Request, start time.Time) {
	ag := c.srv.appendEng
	if ag == nil {
		value, err := c.srv.cfg.DB.Get(req.Key)
		resp := Response{ID: req.ID, Status: StatusOK, Value: value}
		if errors.Is(err, core.ErrNotFound) {
			resp = Response{ID: req.ID, Status: StatusNotFound}
		} else if err != nil {
			resp = errResponse(req.ID, err)
		}
		c.finishRead(req, start, &resp)
		return
	}
	// Append-capable engine: the value lands directly after the response
	// header in the pooled buffer — no intermediate value slice at all.
	rb := getRespBuf()
	rb.b = binary.LittleEndian.AppendUint32(rb.b, req.ID)
	rb.b = append(rb.b, byte(StatusOK))
	b, err := ag.GetAppend(req.Key, rb.b)
	switch {
	case err == nil:
		rb.b = b
	case errors.Is(err, core.ErrNotFound):
		rb.b = AppendResponse(rb.b[:0], &Response{ID: req.ID, Status: StatusNotFound})
	default:
		resp := errResponse(req.ID, err)
		rb.b = AppendResponse(rb.b[:0], &resp)
	}
	c.srv.metrics.observeOp(req.Op, time.Since(start))
	c.sendBuf(rb)
}

// handleMultiGet serves the MULTIGET opcode: one batched lookup whose
// response carries found/value slots aligned with the request's keys.
// Engines exposing MultiGet (the sharded facade) fan the batch out per
// shard in parallel; others fall back to a sequential key loop.
func (c *conn) handleMultiGet(req *Request, start time.Time) {
	var vals [][]byte
	var err error
	if mg := c.srv.multiEng; mg != nil {
		vals, err = mg.MultiGet(req.Keys)
	} else {
		vals = make([][]byte, len(req.Keys))
		for i, k := range req.Keys {
			v, gerr := c.srv.cfg.DB.Get(k)
			if errors.Is(gerr, core.ErrNotFound) {
				continue
			}
			if gerr != nil {
				err = gerr
				break
			}
			if v == nil {
				v = []byte{}
			}
			vals[i] = v
		}
	}
	if err != nil {
		resp := errResponse(req.ID, err)
		c.finishRead(req, start, &resp)
		return
	}
	rb := getRespBuf()
	rb.b = binary.LittleEndian.AppendUint32(rb.b, req.ID)
	rb.b = append(rb.b, byte(StatusOK))
	rb.b = AppendMultiGetValues(rb.b, vals)
	c.srv.metrics.observeOp(req.Op, time.Since(start))
	c.sendBuf(rb)
}

func (c *conn) handleScan(req *Request, start time.Time) {
	limit := int(req.Limit)
	if limit <= 0 || limit > c.srv.cfg.MaxScanResults {
		limit = c.srv.cfg.MaxScanResults
	}
	byteBudget := c.srv.cfg.MaxFrameBytes / 2
	resp := Response{ID: req.ID, Status: StatusOK, Pairs: make([]KV, 0, 16)}
	used := 0
	err := c.srv.cfg.DB.Scan(req.Lo, req.Hi, func(k, v []byte) bool {
		if len(resp.Pairs) >= limit || used >= byteBudget {
			resp.More = true
			return false
		}
		// The callback's slices are only valid during the call.
		resp.Pairs = append(resp.Pairs, KV{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		used += len(k) + len(v) + 16
		return true
	})
	if err != nil {
		resp = errResponse(req.ID, err)
	}
	c.finishRead(req, start, &resp)
}

// handleScanStream serves SCANSTREAM: the whole scan flows to the
// client as a sequence of SCAN-shaped frames on this request's ID —
// more=1 frames while data remains, a final more=0 frame to end the
// stream. Like REPLSYNC it occupies the read loop, and the bounded out
// channel is the backpressure: a slow client stalls the scan instead of
// buffering it. Limit bounds pairs per frame, not the stream.
func (c *conn) handleScanStream(req *Request, start time.Time) {
	limit := int(req.Limit)
	if limit <= 0 || limit > c.srv.cfg.MaxScanResults {
		limit = c.srv.cfg.MaxScanResults
	}
	byteBudget := c.srv.cfg.MaxFrameBytes / 2
	pairs := make([]KV, 0, 16)
	used := 0
	stopped := false
	emit := func(more bool) {
		// send encodes synchronously, so the pair buffers may be reused
		// as soon as it returns.
		c.send(&Response{ID: req.ID, Status: StatusOK, Pairs: pairs, More: more})
		pairs = pairs[:0]
		used = 0
	}
	err := c.srv.cfg.DB.Scan(req.Lo, req.Hi, func(k, v []byte) bool {
		select {
		case <-c.stop:
			stopped = true
			return false
		default:
		}
		// The callback's slices are only valid during the call.
		pairs = append(pairs, KV{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), v...),
		})
		used += len(k) + len(v) + 16
		if len(pairs) >= limit || used >= byteBudget {
			emit(true)
		}
		return true
	})
	if stopped {
		// Teardown mid-stream: the client learns from the closing
		// connection, not a frame.
		c.srv.metrics.observeOp(req.Op, time.Since(start))
		return
	}
	if err != nil {
		// A StatusError frame on this ID ends the stream.
		resp := errResponse(req.ID, err)
		c.finishRead(req, start, &resp)
		return
	}
	emit(false)
	c.srv.metrics.observeOp(req.Op, time.Since(start))
}

func (c *conn) handleStats(req *Request, start time.Time) {
	body, err := json.Marshal(c.srv.payload())
	resp := Response{ID: req.ID, Status: StatusOK, Value: body}
	if err != nil {
		resp = errResponse(req.ID, err)
	}
	c.finishRead(req, start, &resp)
}

// handleTrace serves the TRACE opcode: a traced point lookup whose JSON
// trace is the response body. Not-found is still StatusOK — the trace
// reports the outcome, and the miss path is the diagnostic payoff.
func (c *conn) handleTrace(req *Request, start time.Time) {
	_, tr, err := c.srv.cfg.DB.GetTraced(req.Key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		resp := errResponse(req.ID, err)
		c.finishRead(req, start, &resp)
		return
	}
	body, jerr := json.Marshal(tr)
	resp := Response{ID: req.ID, Status: StatusOK, Value: body}
	if jerr != nil {
		resp = errResponse(req.ID, jerr)
	}
	c.finishRead(req, start, &resp)
}

// getSeqWaitTimeout bounds how long a GETSEQ read waits for its shard's
// watermark; a lagging follower answers with an error the client can
// retry rather than holding the connection indefinitely.
const getSeqWaitTimeout = 30 * time.Second

// handleGetSeq serves the read-your-writes GET: wait until the key's
// shard has applied at least MinSeq (on a follower, until replication
// catches up), then read. Engines without sequence watermarks degrade to
// a plain GET when MinSeq is 0 and reject otherwise.
func (c *conn) handleGetSeq(req *Request, start time.Time) {
	if req.MinSeq > 0 {
		if c.srv.seqEng == nil {
			resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: engine has no sequence watermarks")}
			c.finishRead(req, start, &resp)
			return
		}
		shard := 0
		if c.srv.sharded != nil {
			shard = c.srv.sharded.ShardOf(req.Key)
		}
		if err := c.srv.seqEng.WaitForSeq(shard, req.MinSeq, getSeqWaitTimeout); err != nil {
			resp := errResponse(req.ID, err)
			c.finishRead(req, start, &resp)
			return
		}
	}
	c.handleGet(req, start)
}

// handleCheckpoint serves the CHECKPOINT opcode: an online backup into a
// named subdirectory of the server's checkpoint root. It runs inline —
// blocking only this connection — while writes proceed through the
// committers; the response body is the durable marker's JSON.
func (c *conn) handleCheckpoint(req *Request, start time.Time) {
	name := string(req.Key)
	if c.srv.ckptEng == nil || c.srv.cfg.CheckpointDir == "" {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: checkpoints not enabled (no -checkpoint-dir)")}
		c.finishRead(req, start, &resp)
		return
	}
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, "/\\") {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: checkpoint name must be a plain directory name")}
		c.finishRead(req, start, &resp)
		return
	}
	info, err := c.srv.ckptEng.Checkpoint(filepath.Join(c.srv.cfg.CheckpointDir, name))
	if err != nil {
		resp := errResponse(req.ID, err)
		c.finishRead(req, start, &resp)
		return
	}
	body, jerr := json.Marshal(info)
	resp := Response{ID: req.ID, Status: StatusOK, Value: body}
	if jerr != nil {
		resp = errResponse(req.ID, jerr)
	}
	c.srv.cfg.Logf("server: checkpoint %q: %d files, %d bytes", name, info.Files, info.Bytes)
	c.finishRead(req, start, &resp)
}

// handleMerkle serves the MERKLE opcode: a Merkle summary of the
// engine's logical content pinned at the request's sequence vector
// (current watermarks when empty). The full scan runs inline, blocking
// only this connection.
func (c *conn) handleMerkle(req *Request, start time.Time) {
	if c.srv.merkleEng == nil {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: engine has no Merkle support")}
		c.finishRead(req, start, &resp)
		return
	}
	seqs := req.Seqs
	if len(seqs) == 0 {
		seqs = nil
	}
	// An explicit vector may be ahead of this server (a follower still
	// catching up to the primary's pin point): wait for each shard before
	// pinning, so cross-server comparison doesn't race replication.
	if seqs != nil && c.srv.seqEng != nil {
		for shard, seq := range seqs {
			if err := c.srv.seqEng.WaitForSeq(shard, seq, getSeqWaitTimeout); err != nil {
				resp := errResponse(req.ID, err)
				c.finishRead(req, start, &resp)
				return
			}
		}
	}
	tree, err := c.srv.merkleEng.MerkleAt(int(req.Buckets), seqs)
	if err != nil {
		resp := errResponse(req.ID, err)
		c.finishRead(req, start, &resp)
		return
	}
	body, jerr := json.Marshal(tree)
	resp := Response{ID: req.ID, Status: StatusOK, Value: body}
	if jerr != nil {
		resp = errResponse(req.ID, jerr)
	}
	c.finishRead(req, start, &resp)
}

// handleReplSync turns the connection into a replication stream: frames
// flow as StatusOK responses bearing this request's ID until the
// follower hangs up, the server drains, or the follower's watermarks
// fall off the backlog (an error frame explains, then the stream ends).
// The call occupies the read loop, so the connection is dedicated —
// exactly how the follower uses it.
func (c *conn) handleReplSync(req *Request, start time.Time) {
	if c.srv.cfg.Repl == nil {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: replication not enabled")}
		c.finishRead(req, start, &resp)
		return
	}
	c.srv.cfg.Logf("server: replication stream from %s at watermarks %v", c.nc.RemoteAddr(), req.Seqs)
	send := func(frame []byte) error {
		select {
		case <-c.stop:
			return errStreamStopped
		default:
		}
		c.send(&Response{ID: req.ID, Status: StatusOK, Value: frame})
		return nil
	}
	err := c.srv.cfg.Repl.Stream(req.Seqs, send, c.stop)
	c.srv.metrics.observeOp(req.Op, time.Since(start))
	if err != nil && !errors.Is(err, errStreamStopped) {
		c.srv.cfg.Logf("server: replication stream from %s ended: %v", c.nc.RemoteAddr(), err)
	}
}

// errStreamStopped marks a replication stream ended by connection
// teardown rather than a protocol condition.
var errStreamStopped = errors.New("server: stream stopped")

// submitWrite routes ops to their group committer(s) and queues the ack.
// Against a sharded engine, point writes go to the owning shard's
// committer and a BATCH is split into per-shard sub-batches, each
// submitted to its shard's committer; the ack waits for all of them. All
// channels apply backpressure by blocking the read loop when full.
func (c *conn) submitWrite(req *Request, start time.Time, ops []core.BatchOp) {
	if c.srv.cfg.ReadOnly {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: read-only replica (writes go to the primary)")}
		c.finishRead(req, start, &resp)
		return
	}
	if len(ops) == 0 {
		c.finishRead(req, start, &Response{ID: req.ID, Status: StatusOK})
		return
	}
	pw := &pendingWrite{id: req.ID, op: req.Op, start: start}
	if se := c.srv.sharded; se == nil {
		cr := &commitReq{ops: ops, done: make(chan error, 1)}
		c.srv.committers[0].submit(cr)
		pw.reqs = append(pw.reqs, cr)
	} else if len(ops) == 1 {
		shard := se.ShardOf(ops[0].Key)
		cr := &commitReq{ops: ops, shard: shard, done: make(chan error, 1)}
		c.srv.committers[shard].submit(cr)
		pw.reqs = append(pw.reqs, cr)
	} else {
		subs := make([][]core.BatchOp, len(c.srv.committers))
		for _, op := range ops {
			i := se.ShardOf(op.Key)
			subs[i] = append(subs[i], op)
		}
		for i, sub := range subs {
			if len(sub) == 0 {
				continue
			}
			cr := &commitReq{ops: sub, shard: i, done: make(chan error, 1)}
			c.srv.committers[i].submit(cr)
			pw.reqs = append(pw.reqs, cr)
		}
	}
	c.acks <- pw
}

// handleSketch serves the SKETCH opcode from the server's per-shard
// write-stream sketches: freq routes to the key's owning shard's
// count-min; card sums the per-shard HyperLogLog estimates, which is
// sound because hash routing makes shard keyspaces disjoint.
func (c *conn) handleSketch(req *Request, start time.Time) {
	var est uint64
	switch req.Sub {
	case SketchFreq:
		shard := 0
		if se := c.srv.sharded; se != nil {
			shard = se.ShardOf(req.Key)
		}
		est = c.srv.sketches[shard].Freq(req.Key)
	case SketchCard:
		for _, set := range c.srv.sketches {
			est += set.Card()
		}
	}
	resp := Response{ID: req.ID, Status: StatusOK, Value: binary.AppendUvarint(nil, est)}
	c.finishRead(req, start, &resp)
}

// submitRMW routes an INCR or CAS to its key's group committer, which
// resolves it atomically under the shard's single-writer serialization;
// the ack carries the result (or the conflict).
func (c *conn) submitRMW(req *Request, start time.Time) {
	if c.srv.cfg.ReadOnly {
		resp := Response{ID: req.ID, Status: StatusError, Value: []byte("server: read-only replica (writes go to the primary)")}
		c.finishRead(req, start, &resp)
		return
	}
	rmw := &rmwOp{
		op:          req.Op,
		key:         req.Key,
		delta:       req.Delta,
		expected:    req.Expected,
		hasExpected: req.HasExpected,
		newValue:    req.Value,
	}
	shard := 0
	if se := c.srv.sharded; se != nil {
		shard = se.ShardOf(req.Key)
	}
	cr := &commitReq{rmw: rmw, shard: shard, done: make(chan error, 1)}
	c.srv.committers[shard].submit(cr)
	c.acks <- &pendingWrite{id: req.ID, op: req.Op, start: start, reqs: []*commitReq{cr}}
}

func (c *conn) ackLoop() {
	for pw := range c.acks {
		var err error
		for _, cr := range pw.reqs {
			if e := <-cr.done; e != nil && err == nil {
				err = e
			}
		}
		resp := Response{ID: pw.id, Status: StatusOK}
		if err != nil {
			resp = errResponse(pw.id, err)
		} else if len(pw.reqs) == 1 && pw.reqs[0].rmw != nil {
			// RMW acks own their body (the INCR result), so they carry no
			// seq-ack coordinates; see PROTOCOL.md.
			rmw := pw.reqs[0].rmw
			switch {
			case errors.Is(rmw.err, core.ErrCASMismatch):
				resp = Response{ID: pw.id, Status: StatusConflict, Value: []byte(rmw.err.Error())}
			case rmw.err != nil:
				resp = errResponse(pw.id, rmw.err)
			case pw.op == OpIncr:
				resp.Value = binary.AppendVarint(nil, rmw.result)
			}
		} else if c.srv.seqEng != nil {
			// Successful write acks carry (shard, seq) coordinates for
			// read-your-writes against replicas; clients that predate them
			// ignore ack bodies.
			acks := make([]ShardSeq, 0, len(pw.reqs))
			for _, cr := range pw.reqs {
				if cr.seq > 0 {
					acks = append(acks, ShardSeq{Shard: cr.shard, Seq: cr.seq})
				}
			}
			if len(acks) > 0 {
				resp.Value = AppendSeqAcks(nil, acks)
			}
		}
		c.srv.metrics.observeOp(pw.op, time.Since(pw.start))
		c.send(&resp)
	}
	close(c.out)
}

func errResponse(id uint32, err error) Response {
	status := StatusError
	if errors.Is(err, core.ErrClosed) {
		status = StatusShutdown
	}
	return Response{ID: id, Status: status, Value: []byte(err.Error())}
}

// send encodes resp into a pooled buffer and queues it; it blocks when
// the client stops reading (bounded buffering, natural backpressure).
// The write loop returns the buffer to the pool after the frame is out.
func (c *conn) send(resp *Response) {
	rb := getRespBuf()
	rb.b = AppendResponse(rb.b, resp)
	c.sendBuf(rb)
}

// sendBuf queues an already-encoded pooled payload. Everything on c.out
// is pool-owned: the write loop is the single point of release.
func (c *conn) sendBuf(rb *respBuf) {
	c.out <- rb
}

func (c *conn) writeLoop(done chan struct{}) {
	defer close(done)
	broken := false
	write := func(rb *respBuf) {
		defer putRespBuf(rb)
		if broken {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if err := WriteFrame(c.bw, rb.b); err != nil {
			// The connection is dead: keep draining out so the other
			// goroutines never block, and close to unblock the reader. The
			// stop signal terminates any replication stream feeding out.
			broken = true
			c.nc.Close()
			c.signalStop()
			return
		}
		c.srv.metrics.BytesOut.Add(int64(len(rb.b) + frameHeaderLen))
	}
	flush := func() {
		if broken {
			return
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if err := c.bw.Flush(); err != nil {
			broken = true
			c.nc.Close()
			c.signalStop()
		}
	}
	for rb := range c.out {
		write(rb)
		// Fold every already-queued response into this flush: pipelined
		// responses share syscalls the same way commits share fsyncs.
	batch:
		for {
			select {
			case rb2, open := <-c.out:
				if !open {
					break batch
				}
				write(rb2)
			default:
				break batch
			}
		}
		flush()
	}
	flush()
}

package server

import (
	"errors"

	"lsmkv/internal/core"
	"lsmkv/internal/kv"
)

// rmwOp is one read-modify-write (INCR or CAS) riding a commitReq. The
// commit loop resolves it — reads the current value, applies the
// modification, and appends the resulting set to the group — under the
// shard's single-writer serialization, which is what makes the opcodes
// atomic without any extra locking. After done fires, result carries the
// INCR outcome and err any resolution failure (conflict, non-counter);
// a resolution failure excludes the op from the group, so the group's
// own commit error and err are independent.
type rmwOp struct {
	op          Opcode // OpIncr or OpCas
	key         []byte
	delta       int64  // INCR addend
	expected    []byte // CAS comparand (when hasExpected)
	hasExpected bool
	newValue    []byte // CAS replacement
	result      int64  // INCR outcome
	err         error  // resolution failure
}

// commitReq is one write request (PUT, DELETE, BATCH, or a
// read-modify-write) — or, against a sharded engine, one shard's slice of
// it — waiting for a group-commit loop. done receives the commit outcome
// exactly once; on success, seq holds the shard's sequence watermark
// after the commit group applied (0 when the engine does not expose
// sequence numbers), which the ack layer forwards to clients as their
// read-your-writes coordinate.
type commitReq struct {
	ops   []core.BatchOp
	rmw   *rmwOp // when non-nil, ops is produced by resolution
	shard int
	seq   uint64
	done  chan error
}

// committer is one group-commit loop: a single goroutine drains its
// submission channel, coalescing every write request it can grab (up to
// maxOps engine ops) into one apply call — one WAL record and, when sync
// is on, one fsync for the whole group. Under load the group grows toward
// maxOps and the fsync cost amortizes across writers; idle, each write
// commits alone with no added latency.
//
// A single-engine server runs one committer applying through
// Engine.ApplyBatch; a sharded server runs one per shard, each applying
// through ApplyShardBatch, so shards group-commit (and fsync)
// independently — the per-shard WAL is pointless if every shard's commits
// still funnel through one loop.
type committer struct {
	apply  func(ops []core.BatchOp, sync bool) error
	ch     chan *commitReq
	maxOps int
	sync   bool
	// get reads the current value of a key for read-modify-write
	// resolution (nil disables RMW; such submissions fail cleanly).
	get func(key []byte) ([]byte, error)
	// now is the clock RMW resolution uses to judge pending TTL entries.
	now func() int64
	// observe, when non-nil, receives each successfully committed group's
	// ops — the write-stream feed for the server's per-shard sketches. It
	// runs on the commit loop, so implementations need no writer-side
	// locking of their own.
	observe func(ops []core.BatchOp)
	// lastSeq, when non-nil, reads the shard's applied watermark after a
	// group commits. The group's watermark is necessarily >= every member
	// write's own sequence number, so it is a valid (if slightly
	// conservative) read-your-writes coordinate for each of them.
	lastSeq func() uint64
	metrics *Metrics
	done    chan struct{}
}

func newCommitter(apply func(ops []core.BatchOp, sync bool) error, maxOps int, sync bool, m *Metrics) *committer {
	return &committer{
		apply:   apply,
		ch:      make(chan *commitReq, 4096),
		maxOps:  maxOps,
		sync:    sync,
		metrics: m,
		done:    make(chan struct{}),
	}
}

func (c *committer) start() { go c.loop() }

// submit enqueues a write for the next commit group. It blocks when the
// queue is full — backpressure on the submitting connection.
func (c *committer) submit(req *commitReq) {
	c.metrics.CommitQueue.Add(1)
	c.ch <- req
}

// stop closes the submission channel and waits for the loop to drain
// every queued request. Callers must guarantee no submit is in flight.
func (c *committer) stop() {
	close(c.ch)
	<-c.done
}

// errNoRMW reports a read-modify-write submitted to a committer without
// a read hook (an engine that cannot serve point reads by key).
var errNoRMW = errors.New("server: engine does not support read-modify-write")

// currentValue resolves key's value as the pending group ops (applied in
// order) overlay it on the engine: the newest pending op for key wins,
// with TTL entries judged against now. found=false means the key is
// absent (deleted, expired, or never written).
func (c *committer) currentValue(key []byte, pending []core.BatchOp) (value []byte, found bool, err error) {
	for i := len(pending) - 1; i >= 0; i-- {
		op := pending[i]
		if string(op.Key) != string(key) {
			continue
		}
		switch op.Kind {
		case kv.KindDelete:
			return nil, false, nil
		case kv.KindSetTTL:
			exp, payload, ok := kv.SplitExpiryValue(op.Value)
			if !ok || c.now() >= exp {
				return nil, false, nil
			}
			return payload, true, nil
		default:
			return op.Value, true, nil
		}
	}
	if c.get == nil {
		return nil, false, errNoRMW
	}
	v, err := c.get(key)
	if errors.Is(err, core.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// resolveRMW turns r into the BatchOp it commits as, reading the current
// value through the pending-group overlay. A nil return (with r.err set)
// excludes the op from the group.
func (c *committer) resolveRMW(r *rmwOp, pending []core.BatchOp) *core.BatchOp {
	cur, found, err := c.currentValue(r.key, pending)
	if err != nil {
		r.err = err
		return nil
	}
	switch r.op {
	case OpIncr:
		var n int64
		if found {
			var ok bool
			if n, ok = core.DecodeCounter(cur); !ok {
				r.err = core.ErrNotCounter
				return nil
			}
		}
		n += r.delta
		r.result = n
		op := core.PutOp(r.key, core.AppendCounter(nil, n))
		return &op
	case OpCas:
		if r.hasExpected != found || (found && string(cur) != string(r.expected)) {
			r.err = core.ErrCASMismatch
			return nil
		}
		op := core.PutOp(r.key, r.newValue)
		return &op
	default:
		r.err = errors.New("server: unknown rmw op")
		return nil
	}
}

func (c *committer) loop() {
	defer close(c.done)
	reqs := make([]*commitReq, 0, 64)
	ops := make([]core.BatchOp, 0, 256)
	add := func(r *commitReq) {
		reqs = append(reqs, r)
		if r.rmw != nil {
			// Resolution order is arrival order, and each RMW sees every
			// op already folded into this group — two INCRs of one key in
			// one group serialize exactly as if they committed apart.
			if op := c.resolveRMW(r.rmw, ops); op != nil {
				r.ops = append(r.ops[:0], *op)
				ops = append(ops, *op)
			}
			return
		}
		ops = append(ops, r.ops...)
	}
	for first := range c.ch {
		reqs, ops = reqs[:0], ops[:0]
		add(first)
		// Grab everything already queued without blocking: the writers
		// behind these requests are all waiting on an fsync anyway, so
		// folding them into this group is free latency-wise.
	drain:
		for len(ops) < c.maxOps {
			select {
			case r, open := <-c.ch:
				if !open {
					break drain
				}
				add(r)
			default:
				break drain
			}
		}
		c.metrics.CommitQueue.Add(int64(-len(reqs)))
		var err error
		if len(ops) > 0 {
			err = c.apply(ops, c.sync)
			c.metrics.observeCommit(len(ops))
		}
		var seq uint64
		if err == nil {
			if c.observe != nil {
				c.observe(ops)
			}
			if c.lastSeq != nil {
				seq = c.lastSeq()
			}
		}
		for _, r := range reqs {
			r.seq = seq
			r.done <- err
		}
	}
}

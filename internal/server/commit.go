package server

import (
	"lsmkv/internal/core"
)

// commitReq is one write request (PUT, DELETE, or BATCH) — or, against a
// sharded engine, one shard's slice of it — waiting for a group-commit
// loop. done receives the commit outcome exactly once; on success, seq
// holds the shard's sequence watermark after the commit group applied (0
// when the engine does not expose sequence numbers), which the ack layer
// forwards to clients as their read-your-writes coordinate.
type commitReq struct {
	ops   []core.BatchOp
	shard int
	seq   uint64
	done  chan error
}

// committer is one group-commit loop: a single goroutine drains its
// submission channel, coalescing every write request it can grab (up to
// maxOps engine ops) into one apply call — one WAL record and, when sync
// is on, one fsync for the whole group. Under load the group grows toward
// maxOps and the fsync cost amortizes across writers; idle, each write
// commits alone with no added latency.
//
// A single-engine server runs one committer applying through
// Engine.ApplyBatch; a sharded server runs one per shard, each applying
// through ApplyShardBatch, so shards group-commit (and fsync)
// independently — the per-shard WAL is pointless if every shard's commits
// still funnel through one loop.
type committer struct {
	apply  func(ops []core.BatchOp, sync bool) error
	ch     chan *commitReq
	maxOps int
	sync   bool
	// lastSeq, when non-nil, reads the shard's applied watermark after a
	// group commits. The group's watermark is necessarily >= every member
	// write's own sequence number, so it is a valid (if slightly
	// conservative) read-your-writes coordinate for each of them.
	lastSeq func() uint64
	metrics *Metrics
	done    chan struct{}
}

func newCommitter(apply func(ops []core.BatchOp, sync bool) error, maxOps int, sync bool, m *Metrics) *committer {
	return &committer{
		apply:   apply,
		ch:      make(chan *commitReq, 4096),
		maxOps:  maxOps,
		sync:    sync,
		metrics: m,
		done:    make(chan struct{}),
	}
}

func (c *committer) start() { go c.loop() }

// submit enqueues a write for the next commit group. It blocks when the
// queue is full — backpressure on the submitting connection.
func (c *committer) submit(req *commitReq) {
	c.metrics.CommitQueue.Add(1)
	c.ch <- req
}

// stop closes the submission channel and waits for the loop to drain
// every queued request. Callers must guarantee no submit is in flight.
func (c *committer) stop() {
	close(c.ch)
	<-c.done
}

func (c *committer) loop() {
	defer close(c.done)
	reqs := make([]*commitReq, 0, 64)
	ops := make([]core.BatchOp, 0, 256)
	for first := range c.ch {
		reqs = append(reqs[:0], first)
		ops = append(ops[:0], first.ops...)
		// Grab everything already queued without blocking: the writers
		// behind these requests are all waiting on an fsync anyway, so
		// folding them into this group is free latency-wise.
	drain:
		for len(ops) < c.maxOps {
			select {
			case r, open := <-c.ch:
				if !open {
					break drain
				}
				reqs = append(reqs, r)
				ops = append(ops, r.ops...)
			default:
				break drain
			}
		}
		c.metrics.CommitQueue.Add(int64(-len(reqs)))
		err := c.apply(ops, c.sync)
		c.metrics.observeCommit(len(ops))
		var seq uint64
		if err == nil && c.lastSeq != nil {
			seq = c.lastSeq()
		}
		for _, r := range reqs {
			r.seq = seq
			r.done <- err
		}
	}
}

package server

import (
	"errors"
	"testing"

	"lsmkv/internal/replica"
)

// TestWireConstantParity pins the follower's hand-rolled framing (the
// replica package cannot import this one) to the server protocol.
func TestWireConstantParity(t *testing.T) {
	if byte(OpReplSync) != replica.WireOpReplSync {
		t.Fatalf("replica.WireOpReplSync = %d, server OpReplSync = %d", replica.WireOpReplSync, OpReplSync)
	}
	if StatusOK != 0 {
		t.Fatalf("StatusOK = %d; replica's wireStatusOK assumes 0", StatusOK)
	}
}

func TestReplRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpCheckpoint, Key: []byte("nightly-01")},
		{Op: OpReplSync, Seqs: []uint64{0, 7, 1 << 33}},
		{Op: OpReplSync, Seqs: []uint64{}},
		{Op: OpGetSeq, Key: []byte("k"), MinSeq: 42},
		{Op: OpGetSeq, Key: []byte("k"), MinSeq: 0},
		{Op: OpMerkle, Buckets: 256, Seqs: []uint64{9, 9}},
		{Op: OpMerkle},
	}
	for _, c := range cases {
		got := roundTripRequest(t, c)
		if got.Op != c.Op || string(got.Key) != string(c.Key) || got.MinSeq != c.MinSeq || got.Buckets != c.Buckets {
			t.Fatalf("round trip %v: got %+v, want %+v", c.Op, got, c)
		}
		if len(got.Seqs) != len(c.Seqs) {
			t.Fatalf("round trip %v: seqs %v, want %v", c.Op, got.Seqs, c.Seqs)
		}
		for i := range c.Seqs {
			if got.Seqs[i] != c.Seqs[i] {
				t.Fatalf("round trip %v: seqs %v, want %v", c.Op, got.Seqs, c.Seqs)
			}
		}
	}
}

func TestSeqAcksRoundTrip(t *testing.T) {
	acks := []ShardSeq{{Shard: 0, Seq: 12}, {Shard: 7, Seq: 1 << 40}}
	got, err := DecodeSeqAcks(AppendSeqAcks(nil, acks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != acks[0] || got[1] != acks[1] {
		t.Fatalf("acks round trip: %+v", got)
	}
	// Empty body: an old server that sends no ack block.
	if got, err := DecodeSeqAcks(nil); err != nil || got != nil {
		t.Fatalf("empty acks: %v, %v", got, err)
	}
	for name, body := range map[string][]byte{
		"truncated":  AppendSeqAcks(nil, acks)[:3],
		"trailing":   append(AppendSeqAcks(nil, acks), 0xff),
		"huge count": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		if _, err := DecodeSeqAcks(body); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

package server

import (
	"sync"
	"time"
)

// TokenBucket is the server's backpressure valve: each request withdraws
// one token; tokens refill at a fixed rate up to a burst ceiling. When
// the bucket runs dry the caller either waits (slowing the connection
// that is overdriving the server) or — past a bounded backlog — sheds
// the request with StatusThrottled.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket refilling at rate tokens/sec with the
// given burst capacity (minimum 1). A nil *TokenBucket never throttles.
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// Reserve withdraws one token and reports how long the caller must wait
// before acting on it. When honoring the reservation would take longer
// than maxWait the bucket is left untouched and ok is false: the caller
// should shed the request instead of queueing unboundedly.
func (b *TokenBucket) Reserve(maxWait time.Duration) (wait time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait = time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait > maxWait {
		return wait, false
	}
	// Going negative records the debt; the caller sleeps it off, which is
	// exactly the backpressure we want on the overdriving connection.
	b.tokens--
	return wait, true
}

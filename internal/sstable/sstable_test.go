package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lsmkv/internal/filter"
	"lsmkv/internal/iostat"
	"lsmkv/internal/kv"
	"lsmkv/internal/rangefilter"
)

// memFile is an in-memory io.ReaderAt/io.Writer for table tests.
type memFile struct{ buf bytes.Buffer }

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	data := m.buf.Bytes()
	if off >= int64(len(data)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, fmt.Errorf("short read")
	}
	return n, nil
}

// buildTable writes n versioned keys "key%08d" (i*stride) with per-key
// versions and returns an opened reader.
func buildTable(t testing.TB, opts WriterOptions, ropts ReaderOptions, n, stride int) *Reader {
	t.Helper()
	f := &memFile{}
	w := NewWriter(f, opts)
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key%08d", i*stride))
		ik := kv.MakeInternalKey(key, kv.SeqNum(i+1), kv.KindSet)
		if err := w.Add(ik, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	_, size, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if size != uint64(f.buf.Len()) {
		t.Fatalf("Finish reported size %d, wrote %d", size, f.buf.Len())
	}
	r, err := OpenReader(f, int64(f.buf.Len()), ropts)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	return r
}

func variantOptions() map[string]WriterOptions {
	base := filter.Policy{Kind: filter.KindBloom, BitsPerKey: 10}
	return map[string]WriterOptions{
		"plain":       {BlockSize: 512},
		"bloom":       {BlockSize: 512, Filter: base},
		"partitioned": {BlockSize: 512, Filter: base, FilterPartitioned: true},
		"hashindex":   {BlockSize: 512, Filter: base, BlockHashIndex: true},
		"learned-plr": {BlockSize: 512, Filter: base, Learned: LearnedPLR},
		"learned-rs":  {BlockSize: 512, Filter: base, Learned: LearnedRadixSpline},
		"rangefilter": {BlockSize: 512, Filter: base,
			RangeFilter: rangefilter.Policy{Kind: rangefilter.KindSuRF, SuRFMode: rangefilter.SuRFReal, SuRFSuffixBytes: 2}},
		"everything": {BlockSize: 512, Filter: base, FilterPartitioned: true, BlockHashIndex: true,
			Learned:     LearnedPLR,
			RangeFilter: rangefilter.Policy{Kind: rangefilter.KindSuRF, SuRFMode: rangefilter.SuRFReal, SuRFSuffixBytes: 2}},
	}
}

func readerOptionsFor(name string) ReaderOptions {
	return ReaderOptions{UseLearnedIndex: true, UseBlockHashIndex: true}
}

func TestTableGetAllVariants(t *testing.T) {
	const n, stride = 2000, 3
	for name, opts := range variantOptions() {
		t.Run(name, func(t *testing.T) {
			r := buildTable(t, opts, readerOptionsFor(name), n, stride)
			// Every present key is found with the right value.
			for i := 0; i < n; i += 7 {
				key := []byte(fmt.Sprintf("key%08d", i*stride))
				v, kind, found, err := r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
				if err != nil {
					t.Fatalf("Get(%s): %v", key, err)
				}
				if !found || kind != kv.KindSet {
					t.Fatalf("Get(%s): found=%v kind=%v", key, found, kind)
				}
				if want := fmt.Sprintf("value-%d", i); string(v) != want {
					t.Fatalf("Get(%s): value %q want %q", key, v, want)
				}
			}
			// Absent keys (between strides) are not found.
			for i := 0; i < n; i += 13 {
				key := []byte(fmt.Sprintf("key%08d", i*stride+1))
				_, _, found, err := r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
				if err != nil {
					t.Fatalf("Get absent: %v", err)
				}
				if found {
					t.Fatalf("Get(%s): found absent key", key)
				}
			}
		})
	}
}

func TestTableIteratorFullScan(t *testing.T) {
	const n = 3000
	for name, opts := range variantOptions() {
		t.Run(name, func(t *testing.T) {
			r := buildTable(t, opts, readerOptionsFor(name), n, 2)
			it := r.NewIterator()
			defer it.Close()
			count := 0
			var prev kv.InternalKey
			for ok := it.First(); ok; ok = it.Next() {
				if count > 0 && kv.CompareInternal(prev, it.Key()) >= 0 {
					t.Fatalf("out of order at %d", count)
				}
				prev = it.Key().Clone()
				count++
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("scanned %d entries want %d", count, n)
			}
		})
	}
}

func TestTableIteratorSeekGE(t *testing.T) {
	const n, stride = 1000, 10
	r := buildTable(t, WriterOptions{BlockSize: 256}, ReaderOptions{}, n, stride)
	it := r.NewIterator()
	defer it.Close()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		x := rng.Intn(n*stride + 100)
		target := kv.MakeSearchKey([]byte(fmt.Sprintf("key%08d", x)), kv.MaxSeqNum)
		ok := it.SeekGE(target)
		// Expected: first key with i*stride >= x.
		wantIdx := (x + stride - 1) / stride
		if wantIdx >= n {
			if ok {
				t.Fatalf("SeekGE(%d) found %s, want exhausted", x, it.Key())
			}
			continue
		}
		if !ok {
			t.Fatalf("SeekGE(%d) exhausted, want key%08d", x, wantIdx*stride)
		}
		want := fmt.Sprintf("key%08d", wantIdx*stride)
		if string(it.Key().UserKey) != want {
			t.Fatalf("SeekGE(%d) landed on %s want %s", x, it.Key().UserKey, want)
		}
	}
}

func TestTableMultiVersionKeys(t *testing.T) {
	// One user key with many versions spanning multiple blocks, plus
	// neighbors: the lookup must return the newest visible version for
	// every snapshot even when versions straddle block boundaries.
	f := &memFile{}
	w := NewWriter(f, WriterOptions{BlockSize: 128}) // tiny blocks force straddling
	add := func(key string, seq kv.SeqNum, kind kv.Kind, val string) {
		if err := w.Add(kv.MakeInternalKey([]byte(key), seq, kind), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	add("aaa", 5, kv.KindSet, "a5")
	const versions = 100
	for s := versions; s >= 1; s-- { // internal order: high seq first
		add("hot", kv.SeqNum(s), kv.KindSet, fmt.Sprintf("hot%d", s))
	}
	add("zzz", 7, kv.KindSet, "z7")
	if _, _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, int64(f.buf.Len()), ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBlocks() < 5 {
		t.Fatalf("expected many blocks, got %d", r.NumBlocks())
	}
	for _, snap := range []kv.SeqNum{1, 2, 50, 99, 100, 200} {
		want := snap
		if want > versions {
			want = versions
		}
		v, _, found, err := r.Get([]byte("hot"), filter.HashKey([]byte("hot")), snap)
		if err != nil || !found {
			t.Fatalf("snap %d: found=%v err=%v", snap, found, err)
		}
		if string(v) != fmt.Sprintf("hot%d", want) {
			t.Fatalf("snap %d: got %q want hot%d", snap, v, want)
		}
	}
	// Snapshot 0 sees nothing.
	if _, _, found, _ := r.Get([]byte("hot"), filter.HashKey([]byte("hot")), 0); found {
		t.Error("snapshot 0 must not see any version")
	}
	// Neighbors still resolve.
	v, _, found, _ := r.Get([]byte("aaa"), filter.HashKey([]byte("aaa")), kv.MaxSeqNum)
	if !found || string(v) != "a5" {
		t.Errorf("aaa: %q %v", v, found)
	}
	v, _, found, _ = r.Get([]byte("zzz"), filter.HashKey([]byte("zzz")), kv.MaxSeqNum)
	if !found || string(v) != "z7" {
		t.Errorf("zzz: %q %v", v, found)
	}
}

func TestTableTombstones(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterOptions{BlockSize: 512})
	w.Add(kv.MakeInternalKey([]byte("k"), 9, kv.KindDelete), nil)
	w.Add(kv.MakeInternalKey([]byte("k"), 5, kv.KindSet), []byte("v5"))
	props, _, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if props.NumTombstones != 1 {
		t.Errorf("NumTombstones=%d want 1", props.NumTombstones)
	}
	r, err := OpenReader(f, int64(f.buf.Len()), ReaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, kind, found, _ := r.Get([]byte("k"), filter.HashKey([]byte("k")), kv.MaxSeqNum)
	if !found || kind != kv.KindDelete {
		t.Errorf("expected tombstone at snapshot max, got kind=%v found=%v", kind, found)
	}
	v, kind, found, _ := r.Get([]byte("k"), filter.HashKey([]byte("k")), 5)
	if !found || kind != kv.KindSet || string(v) != "v5" {
		t.Errorf("snapshot 5 must see v5, got %q kind=%v found=%v", v, kind, found)
	}
}

func TestTableProperties(t *testing.T) {
	r := buildTable(t, WriterOptions{BlockSize: 512}, ReaderOptions{}, 500, 2)
	p := r.Properties()
	if p.NumEntries != 500 {
		t.Errorf("NumEntries=%d", p.NumEntries)
	}
	if string(p.SmallestUser) != "key00000000" {
		t.Errorf("SmallestUser=%q", p.SmallestUser)
	}
	if string(p.LargestUser) != fmt.Sprintf("key%08d", 499*2) {
		t.Errorf("LargestUser=%q", p.LargestUser)
	}
	if p.SmallestSeq != 1 || p.LargestSeq != 500 {
		t.Errorf("seq bounds [%d,%d]", p.SmallestSeq, p.LargestSeq)
	}
	if p.NumBlocks == 0 || int(p.NumBlocks) != r.NumBlocks() {
		t.Errorf("NumBlocks=%d reader says %d", p.NumBlocks, r.NumBlocks())
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	w := NewWriter(&memFile{}, WriterOptions{})
	if err := w.Add(kv.MakeInternalKey([]byte("b"), 1, kv.KindSet), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(kv.MakeInternalKey([]byte("a"), 2, kv.KindSet), nil); err == nil {
		t.Error("smaller user key must be rejected")
	}
	// Same user key with higher seq sorts earlier — also out of order.
	w2 := NewWriter(&memFile{}, WriterOptions{})
	w2.Add(kv.MakeInternalKey([]byte("k"), 1, kv.KindSet), nil)
	if err := w2.Add(kv.MakeInternalKey([]byte("k"), 9, kv.KindSet), nil); err == nil {
		t.Error("newer version after older must be rejected")
	}
}

func TestOpenReaderRejectsCorrupt(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterOptions{BlockSize: 256})
	for i := 0; i < 100; i++ {
		w.Add(kv.MakeInternalKey([]byte(fmt.Sprintf("key%04d", i)), kv.SeqNum(i+1), kv.KindSet), []byte("v"))
	}
	w.Finish()
	good := append([]byte(nil), f.buf.Bytes()...)

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := OpenReader(&memFile{buf: *bytes.NewBuffer(bad)}, int64(len(bad)), ReaderOptions{}); err == nil {
		t.Error("corrupt magic must fail")
	}
	// Too short.
	if _, err := OpenReader(&memFile{buf: *bytes.NewBuffer(good[:10])}, 10, ReaderOptions{}); err == nil {
		t.Error("truncated table must fail")
	}
}

func TestBlockChecksumDetectsBitRot(t *testing.T) {
	f := &memFile{}
	w := NewWriter(f, WriterOptions{BlockSize: 4096})
	for i := 0; i < 100; i++ {
		w.Add(kv.MakeInternalKey([]byte(fmt.Sprintf("key%04d", i)), kv.SeqNum(i+1), kv.KindSet), []byte("value"))
	}
	w.Finish()
	data := f.buf.Bytes()
	data[10] ^= 0x01 // flip a bit inside the first data block
	r, err := OpenReader(f, int64(len(data)), ReaderOptions{})
	if err != nil {
		t.Fatal(err) // footer/index are intact
	}
	_, _, _, err = r.Get([]byte("key0000"), filter.HashKey([]byte("key0000")), kv.MaxSeqNum)
	if err == nil {
		t.Error("bit rot in a data block must surface as an error")
	}
}

func TestStatsAccounting(t *testing.T) {
	stats := &iostat.Stats{}
	opts := WriterOptions{BlockSize: 512, Filter: filter.Policy{Kind: filter.KindBloom, BitsPerKey: 10}}
	r := buildTable(t, opts, ReaderOptions{Stats: stats}, 1000, 2)

	// A present-key Get must read at least one block.
	key := []byte(fmt.Sprintf("key%08d", 500*2))
	r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
	s := stats.Snapshot()
	if s.BlockReads == 0 || s.BytesRead == 0 {
		t.Errorf("expected block reads recorded: %+v", s)
	}

	// Absent keys screened by MayContain never touch storage.
	before := stats.Snapshot()
	screened := 0
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("nope%08d", i))
		if !r.MayContain(filter.HashKey(key)) {
			screened++
		}
	}
	after := stats.Snapshot()
	if screened < 450 {
		t.Errorf("bloom screened only %d/500 absent keys", screened)
	}
	if after.BlockReads != before.BlockReads {
		t.Error("MayContain must not read blocks")
	}
	if after.FilterProbes-before.FilterProbes != 500 {
		t.Errorf("FilterProbes delta %d want 500", after.FilterProbes-before.FilterProbes)
	}
}

func TestPartitionedFilterSkipsBlocks(t *testing.T) {
	stats := &iostat.Stats{}
	opts := WriterOptions{
		BlockSize:         512,
		Filter:            filter.Policy{Kind: filter.KindBloom, BitsPerKey: 10},
		FilterPartitioned: true,
	}
	r := buildTable(t, opts, ReaderOptions{Stats: stats}, 2000, 2)
	before := stats.Snapshot()
	misses := 0
	for i := 0; i < 300; i++ {
		key := []byte(fmt.Sprintf("key%08d", i*2+1)) // absent, inside key range
		_, _, found, err := r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			misses++
		}
	}
	after := stats.Snapshot()
	if misses != 300 {
		t.Fatalf("absent keys found: %d/300 missing", misses)
	}
	// Partitioned filters should have stopped nearly all block reads.
	reads := after.BlockReads - before.BlockReads
	if reads > 30 {
		t.Errorf("%d block reads for 300 filtered absent-key lookups", reads)
	}
	if after.FilterNegatives == before.FilterNegatives {
		t.Error("no partitioned-filter negatives recorded")
	}
}

func TestRangeFilterBlockRoundTrip(t *testing.T) {
	opts := WriterOptions{
		BlockSize:   512,
		RangeFilter: rangefilter.Policy{Kind: rangefilter.KindSuRF, SuRFMode: rangefilter.SuRFReal, SuRFSuffixBytes: 2},
	}
	r := buildTable(t, opts, ReaderOptions{}, 1000, 10)
	// Range covering existing keys answers maybe.
	if !r.MayContainRange([]byte("key00000100"), []byte("key00000200")) {
		t.Error("populated range filtered out")
	}
	// Range past the last key (key00009990) is empty.
	if r.MayContainRange([]byte("key00009991"), []byte("key00009995")) {
		t.Error("empty tail range not filtered (SuRF should prune this)")
	}
}

func TestApproxIndexMemoryPositive(t *testing.T) {
	for name, opts := range variantOptions() {
		r := buildTable(t, opts, readerOptionsFor(name), 500, 2)
		if r.ApproxIndexMemory() <= 0 {
			t.Errorf("%s: ApproxIndexMemory not positive", name)
		}
	}
}

func TestPrefetchBlockWarmsCache(t *testing.T) {
	c := &countingCache{data: map[string][]byte{}}
	stats := &iostat.Stats{}
	r := buildTable(t, WriterOptions{BlockSize: 512},
		ReaderOptions{Cache: c, Stats: stats, FileNum: 7}, 1000, 2)
	for i := 0; i < r.NumBlocks(); i++ {
		if err := r.PrefetchBlock(i); err != nil {
			t.Fatal(err)
		}
	}
	before := stats.Snapshot()
	key := []byte(fmt.Sprintf("key%08d", 100*2))
	_, _, found, err := r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
	if err != nil || !found {
		t.Fatalf("Get after prefetch: %v %v", found, err)
	}
	after := stats.Snapshot()
	if after.BlockReads != before.BlockReads {
		t.Error("Get after full prefetch must be served from cache")
	}
	if after.BlockCacheHits == before.BlockCacheHits {
		t.Error("expected a cache hit")
	}
}

// countingCache is a trivial map-backed BlockCache for tests.
type countingCache struct {
	data map[string][]byte
}

func (c *countingCache) key(f, o uint64) string { return fmt.Sprintf("%d/%d", f, o) }

func (c *countingCache) Get(f, o uint64) ([]byte, bool) {
	b, ok := c.data[c.key(f, o)]
	return b, ok
}

func (c *countingCache) Insert(f, o uint64, b []byte) { c.data[c.key(f, o)] = b }

func (c *countingCache) EvictFile(f uint64) {}

func BenchmarkTableGet(b *testing.B) {
	r := buildTable(b, WriterOptions{BlockSize: 4096, Filter: filter.Policy{Kind: filter.KindBloom, BitsPerKey: 10}},
		ReaderOptions{}, 100000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key%08d", (i%100000)*2))
		r.Get(key, filter.HashKey(key), kv.MaxSeqNum)
	}
}

func BenchmarkTableScan(b *testing.B) {
	r := buildTable(b, WriterOptions{BlockSize: 4096}, ReaderOptions{}, 100000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := r.NewIterator()
		n := 0
		for ok := it.First(); ok; ok = it.Next() {
			n++
		}
		it.Close()
		if n != 100000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

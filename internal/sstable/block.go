// Package sstable implements the immutable sorted-run file format and its
// read path: prefix-compressed data blocks with restart points, fence
// pointers (the sparse per-block index), point and range filter blocks,
// optional per-block hash indexes, optional learned index models, a
// properties block, and a fixed footer. It is the storage substrate every
// read optimization in the tutorial attaches to.
package sstable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"lsmkv/internal/fence"
	"lsmkv/internal/kv"
)

// Errors returned by the block and table readers.
var (
	ErrCorruptBlock = errors.New("sstable: corrupt block")
	ErrChecksum     = errors.New("sstable: block checksum mismatch")
	ErrCorruptTable = errors.New("sstable: corrupt table")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Block trailer flags.
const (
	blockFlagHashIndex = 1 << 0
	blockTrailerLen    = 1 + 4 // flag byte + crc32
)

// blockBuilder encodes one data block: prefix-compressed entries, restart
// points every restartInterval entries, an optional data-block hash index,
// a flag byte, and a CRC.
type blockBuilder struct {
	restartInterval int
	hashIndex       bool

	buf          []byte
	restarts     []uint32
	sinceRestart int
	lastKey      []byte
	count        int
	hib          fence.HashIndexBuilder
}

func newBlockBuilder(restartInterval int, hashIndex bool) *blockBuilder {
	if restartInterval < 1 {
		restartInterval = 16
	}
	return &blockBuilder{restartInterval: restartInterval, hashIndex: hashIndex}
}

func (b *blockBuilder) add(ikey kv.InternalKey, value []byte) {
	encKey := ikey.Encode(nil)
	shared := 0
	if b.sinceRestart < b.restartInterval && b.count > 0 {
		shared = kv.SharedPrefixLen(b.lastKey, encKey)
	} else {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
		b.sinceRestart = 0
	}
	b.buf = binary.AppendUvarint(b.buf, uint64(shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(encKey)-shared))
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, encKey[shared:]...)
	b.buf = append(b.buf, value...)
	if b.hashIndex {
		b.hib.Add(ikey.UserKey, len(b.restarts)-1)
	}
	b.lastKey = encKey
	b.sinceRestart++
	b.count++
}

func (b *blockBuilder) empty() bool { return b.count == 0 }

// estimatedSize returns the current encoded size including restart array.
func (b *blockBuilder) estimatedSize() int {
	return len(b.buf) + 4*len(b.restarts) + 4 + blockTrailerLen
}

// finish seals the block and returns its bytes.
func (b *blockBuilder) finish() []byte {
	out := b.buf
	for _, r := range b.restarts {
		out = binary.LittleEndian.AppendUint32(out, r)
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.restarts)))
	var flag byte
	if b.hashIndex {
		if withIdx := b.hib.Encode(out); len(withIdx) > len(out) {
			out = withIdx
			flag |= blockFlagHashIndex
		}
	}
	out = append(out, flag)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// reset prepares the builder for the next block.
func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.sinceRestart = 0
	b.lastKey = nil
	b.count = 0
	b.hib.Reset()
}

// block is the decoded, read-only view over one data block.
type block struct {
	data      []byte // entry payload only
	restarts  []uint32
	hashIndex fence.HashIndex
	hasHash   bool
}

// decodeBlock validates the CRC and splits the block into payload,
// restart array, and optional hash index.
func decodeBlock(raw []byte) (*block, error) {
	blk := &block{}
	if err := decodeBlockInto(blk, raw); err != nil {
		return nil, err
	}
	return blk, nil
}

// decodeBlockInto is decodeBlock writing its result into a caller-owned
// block, reusing the restart slice's capacity. The point-read hot path
// feeds it pooled scratch so a cache-hit lookup decodes without
// allocating.
func decodeBlockInto(blk *block, raw []byte) error {
	blk.data = nil
	blk.hashIndex = fence.HashIndex{}
	blk.hasHash = false
	if len(raw) < blockTrailerLen+4 {
		return ErrCorruptBlock
	}
	crcOff := len(raw) - 4
	want := binary.LittleEndian.Uint32(raw[crcOff:])
	if crc32.Checksum(raw[:crcOff], crcTable) != want {
		return ErrChecksum
	}
	flag := raw[crcOff-1]
	body := raw[:crcOff-1]
	if flag&blockFlagHashIndex != 0 {
		idx, payloadLen, ok := fence.ParseHashIndex(body)
		if !ok {
			return ErrCorruptBlock
		}
		blk.hashIndex = idx
		blk.hasHash = true
		body = body[:payloadLen]
	}
	if len(body) < 4 {
		return ErrCorruptBlock
	}
	n := binary.LittleEndian.Uint32(body[len(body)-4:])
	body = body[:len(body)-4]
	if uint32(len(body)) < n*4 {
		return ErrCorruptBlock
	}
	restartOff := len(body) - int(n)*4
	blk.data = body[:restartOff]
	if cap(blk.restarts) >= int(n) {
		blk.restarts = blk.restarts[:n]
	} else {
		blk.restarts = make([]uint32, n)
	}
	for i := range blk.restarts {
		blk.restarts[i] = binary.LittleEndian.Uint32(body[restartOff+4*i:])
	}
	return nil
}

// blockIter iterates the entries of one decoded block.
type blockIter struct {
	b       *block
	offset  int    // offset of current entry within b.data
	nextOff int    // offset just past current entry
	key     []byte // current decoded (full) internal key bytes
	val     []byte
	valid   bool
	err     error
}

func newBlockIter(b *block) *blockIter { return &blockIter{b: b} }

// reset rebinds a (possibly pooled) iterator to a block, keeping the
// decoded-key buffer's capacity so repeated lookups stop allocating.
func (it *blockIter) reset(b *block) {
	it.b = b
	it.offset = 0
	it.nextOff = 0
	it.key = it.key[:0]
	it.val = nil
	it.valid = false
	it.err = nil
}

// decodeEntryAt decodes the entry at off, extending it.key with prefix
// compression relative to the current key state.
func (it *blockIter) decodeEntryAt(off int) bool {
	data := it.b.data
	if off >= len(data) {
		it.valid = false
		return false
	}
	shared, n1 := binary.Uvarint(data[off:])
	if n1 <= 0 {
		it.err = ErrCorruptBlock
		it.valid = false
		return false
	}
	unshared, n2 := binary.Uvarint(data[off+n1:])
	if n2 <= 0 {
		it.err = ErrCorruptBlock
		it.valid = false
		return false
	}
	vlen, n3 := binary.Uvarint(data[off+n1+n2:])
	if n3 <= 0 {
		it.err = ErrCorruptBlock
		it.valid = false
		return false
	}
	p := off + n1 + n2 + n3
	if p+int(unshared)+int(vlen) > len(data) || int(shared) > len(it.key) {
		it.err = ErrCorruptBlock
		it.valid = false
		return false
	}
	it.key = append(it.key[:shared], data[p:p+int(unshared)]...)
	it.val = data[p+int(unshared) : p+int(unshared)+int(vlen) : p+int(unshared)+int(vlen)]
	it.offset = off
	it.nextOff = p + int(unshared) + int(vlen)
	it.valid = true
	return true
}

// seekRestart positions at restart point i (full key stored there).
func (it *blockIter) seekRestart(i int) bool {
	it.key = it.key[:0]
	return it.decodeEntryAt(int(it.b.restarts[i]))
}

func (it *blockIter) First() bool {
	if len(it.b.restarts) == 0 {
		it.valid = false
		return false
	}
	return it.seekRestart(0)
}

func (it *blockIter) Next() bool {
	if !it.valid {
		return false
	}
	return it.decodeEntryAt(it.nextOff)
}

// SeekGE positions at the first entry with internal key >= target.
func (it *blockIter) SeekGE(target kv.InternalKey) bool {
	return it.seekGEEnc(target.Encode(nil))
}

// seekGEEnc is SeekGE over a pre-encoded internal key, letting the hot
// path reuse one encode buffer across blocks and runs.
func (it *blockIter) seekGEEnc(enc []byte) bool {
	if len(it.b.restarts) == 0 {
		it.valid = false
		return false
	}
	// Binary search restarts: last restart whose key <= target.
	lo, hi := 0, len(it.b.restarts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.seekRestart(mid)
		if !it.valid {
			return false
		}
		if kv.CompareEncodedInternal(it.key, enc) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return it.scanFrom(lo, enc)
}

// scanFrom linear-scans from a restart point for the first entry >=
// the encoded target. The hash-index fast path enters here directly.
func (it *blockIter) scanFrom(restart int, encTarget []byte) bool {
	if !it.seekRestart(restart) {
		return false
	}
	for kv.CompareEncodedInternal(it.key, encTarget) < 0 {
		if !it.Next() {
			return false
		}
	}
	return true
}

func (it *blockIter) Valid() bool { return it.valid }

func (it *blockIter) Key() kv.InternalKey {
	ik, _ := kv.ParseInternalKey(it.key)
	return ik
}

func (it *blockIter) Value() []byte { return it.val }

func (it *blockIter) Error() error { return it.err }

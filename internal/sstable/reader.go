package sstable

import (
	"bytes"
	"encoding/binary"
	"io"
	"sort"

	"lsmkv/internal/fence"
	"lsmkv/internal/filter"
	"lsmkv/internal/iostat"
	"lsmkv/internal/kv"
	"lsmkv/internal/learned"
	"lsmkv/internal/rangefilter"
)

// BlockCache is the read path's block cache hook. Implementations must be
// safe for concurrent use. The sstable reader keys blocks by (file number,
// block offset).
type BlockCache interface {
	// Get returns the cached block bytes, if resident.
	Get(fileNum, offset uint64) ([]byte, bool)
	// Insert adds block bytes (already decoded from storage) to the cache.
	Insert(fileNum, offset uint64, block []byte)
	// EvictFile drops every cached block of the file (after compaction
	// deletes it).
	EvictFile(fileNum uint64)
}

// ReaderOptions configures the read path of one table.
type ReaderOptions struct {
	// FileNum identifies the table in the block cache keyspace.
	FileNum uint64
	// Cache is the shared block cache; nil disables caching.
	Cache BlockCache
	// Stats receives I/O accounting; nil disables accounting.
	Stats *iostat.Stats
	// UseLearnedIndex consults the table's learned model (when present)
	// instead of pure binary search over fences.
	UseLearnedIndex bool
	// UseBlockHashIndex uses per-block hash indexes for point lookups
	// (when the table was written with them).
	UseBlockHashIndex bool
}

// Reader provides random and sequential access to one immutable table.
type Reader struct {
	f    io.ReaderAt
	size int64
	opts ReaderOptions

	index      *fence.Index
	filter     filter.Reader   // table-wide filter (nil when partitioned/none)
	partitions []filter.Reader // per-block filters (partitioned mode)
	rf         rangefilter.Reader
	model      learned.Model // nil when absent/disabled
	props      Properties
}

// OpenReader parses the footer and loads the auxiliary blocks (index,
// filters, model, properties) into memory, mirroring how LSM engines pin
// these structures outside the block cache.
func OpenReader(f io.ReaderAt, size int64, opts ReaderOptions) (*Reader, error) {
	if size < footerLen {
		return nil, ErrCorruptTable
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], size-footerLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[81:]) != tableMagic {
		return nil, ErrCorruptTable
	}
	readHandle := func(off int) fence.BlockHandle {
		return fence.BlockHandle{
			Offset: binary.LittleEndian.Uint64(footer[off:]),
			Length: binary.LittleEndian.Uint64(footer[off+8:]),
		}
	}
	indexH, filterH, rfH, learnedH, propsH :=
		readHandle(0), readHandle(16), readHandle(32), readHandle(48), readHandle(64)
	flags := footer[80]

	r := &Reader{f: f, size: size, opts: opts}
	readRaw := func(h fence.BlockHandle) ([]byte, error) {
		if h.Length == 0 {
			return nil, nil
		}
		if h.Offset+h.Length > uint64(size) {
			return nil, ErrCorruptTable
		}
		buf := make([]byte, h.Length)
		if _, err := f.ReadAt(buf, int64(h.Offset)); err != nil {
			return nil, err
		}
		return buf, nil
	}

	indexData, err := readRaw(indexH)
	if err != nil {
		return nil, err
	}
	if r.index, err = fence.Decode(indexData); err != nil {
		return nil, err
	}

	filterData, err := readRaw(filterH)
	if err != nil {
		return nil, err
	}
	if flags&flagPartFil != 0 && len(filterData) > 0 {
		n, w := binary.Uvarint(filterData)
		if w <= 0 {
			return nil, ErrCorruptTable
		}
		rest := filterData[w:]
		// Untrusted count: bound the allocation hint by the bytes left.
		capHint := n
		if max := uint64(len(rest)) + 1; capHint > max {
			capHint = max
		}
		r.partitions = make([]filter.Reader, 0, capHint)
		for i := uint64(0); i < n; i++ {
			var part []byte
			var ok bool
			part, rest, ok = kv.DecodeLengthPrefixed(rest)
			if !ok {
				return nil, ErrCorruptTable
			}
			fr, err := filter.NewReader(part)
			if err != nil {
				return nil, err
			}
			r.partitions = append(r.partitions, fr)
		}
		if len(r.partitions) != r.index.Len() {
			return nil, ErrCorruptTable
		}
	} else if len(filterData) > 0 {
		if r.filter, err = filter.NewReader(filterData); err != nil {
			return nil, err
		}
	}

	rfData, err := readRaw(rfH)
	if err != nil {
		return nil, err
	}
	if r.rf, err = rangefilter.NewReader(rfData); err != nil {
		return nil, err
	}

	if opts.UseLearnedIndex {
		learnedData, err := readRaw(learnedH)
		if err != nil {
			return nil, err
		}
		switch LearnedKind(flags >> 2 & 0x3) {
		case LearnedPLR:
			if len(learnedData) > 0 {
				if r.model, err = learned.DecodePLR(learnedData); err != nil {
					return nil, err
				}
			}
		case LearnedRadixSpline:
			if len(learnedData) > 0 {
				if r.model, err = learned.DecodeRadixSpline(learnedData); err != nil {
					return nil, err
				}
			}
		}
	}

	propsData, err := readRaw(propsH)
	if err != nil {
		return nil, err
	}
	if r.props, err = decodeProperties(propsData); err != nil {
		return nil, err
	}
	return r, nil
}

// Properties returns the table's summary metadata.
func (r *Reader) Properties() Properties { return r.props }

// FilterMemory returns the resident bytes of the table's point filter(s)
// alone — the quantity Monkey's allocation distributes across levels.
func (r *Reader) FilterMemory() int {
	total := 0
	if r.filter != nil {
		total += r.filter.ApproxMemory()
	}
	for _, p := range r.partitions {
		total += p.ApproxMemory()
	}
	return total
}

// ApproxIndexMemory returns the resident bytes of pinned per-table
// structures (fences, filters, model).
func (r *Reader) ApproxIndexMemory() int {
	total := r.index.ApproxMemory()
	if r.filter != nil {
		total += r.filter.ApproxMemory()
	}
	for _, p := range r.partitions {
		total += p.ApproxMemory()
	}
	if r.rf != nil {
		total += r.rf.ApproxMemory()
	}
	if r.model != nil {
		total += r.model.ApproxMemory()
	}
	return total
}

// readBlock fetches and decodes the data block behind handle h, consulting
// the block cache first. rt, when non-nil, receives per-lookup cache and
// read accounting for the read-path trace.
func (r *Reader) readBlock(h fence.BlockHandle, rt *iostat.RunTrace) (*block, error) {
	var raw []byte
	if c := r.opts.Cache; c != nil {
		if cached, ok := c.Get(r.opts.FileNum, h.Offset); ok {
			if r.opts.Stats != nil {
				r.opts.Stats.BlockCacheHits.Add(1)
			}
			if rt != nil {
				rt.CacheHits++
			}
			return decodeBlock(cached)
		}
		if r.opts.Stats != nil {
			r.opts.Stats.BlockCacheMisses.Add(1)
		}
		if rt != nil {
			rt.CacheMisses++
		}
	}
	raw = make([]byte, h.Length)
	if _, err := r.f.ReadAt(raw, int64(h.Offset)); err != nil {
		return nil, err
	}
	if r.opts.Stats != nil {
		r.opts.Stats.BlockReads.Add(1)
		r.opts.Stats.BytesRead.Add(int64(h.Length))
	}
	if rt != nil {
		rt.BlockReads++
	}
	if c := r.opts.Cache; c != nil {
		c.Insert(r.opts.FileNum, h.Offset, raw)
	}
	return decodeBlock(raw)
}

// PrefetchBlock loads the block at ordinal i into the cache without
// surfacing it (Leaper-style compaction-aware warming).
func (r *Reader) PrefetchBlock(i int) error {
	if i < 0 || i >= r.index.Len() {
		return nil
	}
	_, err := r.readBlock(r.index.Entry(i).Handle, nil)
	return err
}

// NumBlocks returns the number of data blocks.
func (r *Reader) NumBlocks() int { return r.index.Len() }

// BlockFirstKey returns the first user key of block i, or nil when out of
// range. The compaction-aware prefetcher uses it to translate hot block
// offsets into hot key ranges.
func (r *Reader) BlockFirstKey(i int) []byte {
	if i < 0 || i >= r.index.Len() {
		return nil
	}
	return r.index.Entry(i).FirstKey
}

// BlockOrdinalForOffset maps a block's file offset back to its ordinal,
// or -1 when no block starts at that offset.
func (r *Reader) BlockOrdinalForOffset(offset uint64) int {
	for i := 0; i < r.index.Len(); i++ {
		if r.index.Entry(i).Handle.Offset == offset {
			return i
		}
	}
	return -1
}

// PrefetchKey loads into the cache the block that would serve a lookup of
// userKey.
func (r *Reader) PrefetchKey(userKey []byte) error {
	return r.PrefetchBlock(r.findStartBlock(userKey))
}

// findStartBlock returns the ordinal of the first block that can contain
// entries with user key >= userKey, for both lookups and scans. The block
// *before* the first fence >= userKey may hold newer versions of userKey,
// so scanning starts there.
func (r *Reader) findStartBlock(userKey []byte) int {
	n := r.index.Len()
	var i int
	if r.model != nil && n > 0 {
		x := learned.KeyToUint64(userKey)
		_, lo, hi := r.model.Predict(x)
		lo, hi = maxInt(0, minInt(lo, n-1)), maxInt(0, minInt(hi, n-1))
		// The model predicts block ordinals, but its error bound only
		// covers trained fence keys; verify the search landed strictly
		// inside the window (then sortedness makes it globally correct)
		// and widen geometrically otherwise.
		step := hi - lo + 1
		for {
			i = lo + sort.Search(hi-lo+1, func(j int) bool {
				return bytes.Compare(r.index.Entry(lo+j).FirstKey, userKey) >= 0
			})
			if i == lo && lo > 0 {
				lo = maxInt(0, lo-step)
				step *= 2
				continue
			}
			if i == hi+1 && hi < n-1 {
				hi = minInt(n-1, hi+step)
				step *= 2
				continue
			}
			break
		}
	} else {
		i = sort.Search(n, func(j int) bool {
			return bytes.Compare(r.index.Entry(j).FirstKey, userKey) >= 0
		})
	}
	if i > 0 {
		i--
	}
	return i
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MayContain consults the table's point filter without touching storage.
// It returns true when the table must be probed.
func (r *Reader) MayContain(kh filter.KeyHash) bool {
	return r.MayContainTraced(kh, nil)
}

// MayContainTraced is MayContain with the filter verdict recorded into rt
// (when non-nil) for the read-path trace.
func (r *Reader) MayContainTraced(kh filter.KeyHash, rt *iostat.RunTrace) bool {
	if r.filter == nil {
		if rt != nil {
			rt.Filter = iostat.FilterNone
		}
		return true
	}
	if r.opts.Stats != nil {
		r.opts.Stats.FilterProbes.Add(1)
	}
	if r.filter.MayContainHash(kh) {
		if rt != nil {
			rt.Filter = iostat.FilterMaybe
		}
		return true
	}
	if r.opts.Stats != nil {
		r.opts.Stats.FilterNegatives.Add(1)
	}
	if rt != nil {
		rt.Filter = iostat.FilterNegativeVerdict
	}
	return false
}

// MayContainRange consults the table's range filter.
func (r *Reader) MayContainRange(lo, hi []byte) bool {
	if r.rf == nil || r.rf.Kind() == rangefilter.KindNone {
		return true
	}
	if r.opts.Stats != nil {
		r.opts.Stats.RangeFilterProbes.Add(1)
	}
	if r.rf.MayContainRange(lo, hi) {
		return true
	}
	if r.opts.Stats != nil {
		r.opts.Stats.RangeFilterNegatives.Add(1)
	}
	return false
}

// Get returns the newest version of userKey visible at snapshot seq.
// found=false means the table holds no visible version. The caller is
// expected to have consulted MayContain first (the engine screens runs
// with the shared key hash); Get itself applies partitioned filters.
func (r *Reader) Get(userKey []byte, kh filter.KeyHash, seq kv.SeqNum) (value []byte, kind kv.Kind, found bool, err error) {
	return r.GetTraced(userKey, kh, seq, nil)
}

// GetTraced is Get with the block-level work recorded into rt (when
// non-nil): the fence/learned landing block, per-block partitioned filter
// verdicts, and cache/read accounting. A nil rt makes it identical to Get.
// Both delegate to GetAppend (see scratch.go), which recycles the decode
// scratch and appends into a caller-supplied buffer.
func (r *Reader) GetTraced(userKey []byte, kh filter.KeyHash, seq kv.SeqNum, rt *iostat.RunTrace) (value []byte, kind kv.Kind, found bool, err error) {
	return r.GetAppend(userKey, kh, seq, nil, rt)
}

// NewIterator returns an iterator over the whole table.
func (r *Reader) NewIterator() kv.Iterator {
	return &tableIter{r: r, blockOrd: -1}
}

// tableIter is the two-level iterator: fence index on top, block iterator
// below.
type tableIter struct {
	r        *Reader
	blockOrd int
	bi       *blockIter
	err      error
}

var _ kv.Iterator = (*tableIter)(nil)

func (ti *tableIter) loadBlock(ord int) bool {
	if ord < 0 || ord >= ti.r.index.Len() {
		ti.bi = nil
		return false
	}
	blk, err := ti.r.readBlock(ti.r.index.Entry(ord).Handle, nil)
	if err != nil {
		ti.err = err
		ti.bi = nil
		return false
	}
	ti.blockOrd = ord
	ti.bi = newBlockIter(blk)
	return true
}

func (ti *tableIter) First() bool {
	if !ti.loadBlock(0) {
		return false
	}
	if ti.bi.First() {
		return true
	}
	return ti.advanceBlock()
}

func (ti *tableIter) advanceBlock() bool {
	for {
		if !ti.loadBlock(ti.blockOrd + 1) {
			return false
		}
		if ti.bi.First() {
			return true
		}
	}
}

func (ti *tableIter) SeekGE(target kv.InternalKey) bool {
	start := ti.r.findStartBlock(target.UserKey)
	if !ti.loadBlock(start) {
		return false
	}
	if ti.bi.SeekGE(target) {
		return true
	}
	if ti.bi.Error() != nil {
		ti.err = ti.bi.Error()
		return false
	}
	return ti.advanceBlock()
}

func (ti *tableIter) Next() bool {
	if ti.bi == nil {
		return false
	}
	if ti.bi.Next() {
		return true
	}
	if ti.bi.Error() != nil {
		ti.err = ti.bi.Error()
		return false
	}
	return ti.advanceBlock()
}

func (ti *tableIter) Valid() bool { return ti.bi != nil && ti.bi.Valid() }

func (ti *tableIter) Key() kv.InternalKey { return ti.bi.Key() }

func (ti *tableIter) Value() []byte { return ti.bi.Value() }

func (ti *tableIter) Error() error {
	if ti.err != nil {
		return ti.err
	}
	if ti.bi != nil {
		return ti.bi.Error()
	}
	return nil
}

func (ti *tableIter) Close() error {
	ti.bi = nil
	return ti.Error()
}

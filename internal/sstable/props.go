package sstable

import (
	"encoding/binary"

	"lsmkv/internal/kv"
)

// Properties summarizes a table for planning: compaction pickers use key
// bounds and tombstone density, the cost model uses entry counts, and the
// engine uses sequence bounds for snapshot-safe garbage collection.
type Properties struct {
	NumEntries    uint64
	NumTombstones uint64
	SmallestUser  []byte
	LargestUser   []byte
	SmallestSeq   kv.SeqNum
	LargestSeq    kv.SeqNum
	RawKeyBytes   uint64
	RawValueBytes uint64
	NumBlocks     uint64
}

func (p *Properties) encode() []byte {
	var out []byte
	out = binary.AppendUvarint(out, p.NumEntries)
	out = binary.AppendUvarint(out, p.NumTombstones)
	out = kv.AppendLengthPrefixed(out, p.SmallestUser)
	out = kv.AppendLengthPrefixed(out, p.LargestUser)
	out = binary.AppendUvarint(out, uint64(p.SmallestSeq))
	out = binary.AppendUvarint(out, uint64(p.LargestSeq))
	out = binary.AppendUvarint(out, p.RawKeyBytes)
	out = binary.AppendUvarint(out, p.RawValueBytes)
	out = binary.AppendUvarint(out, p.NumBlocks)
	return out
}

func decodeProperties(data []byte) (Properties, error) {
	var p Properties
	var ok bool
	next := func() uint64 {
		v, w := binary.Uvarint(data)
		if w <= 0 {
			ok = false
			return 0
		}
		data = data[w:]
		return v
	}
	ok = true
	p.NumEntries = next()
	p.NumTombstones = next()
	if !ok {
		return p, ErrCorruptTable
	}
	var b []byte
	b, data, ok = kv.DecodeLengthPrefixed(data)
	if !ok {
		return p, ErrCorruptTable
	}
	p.SmallestUser = append([]byte(nil), b...)
	b, data, ok = kv.DecodeLengthPrefixed(data)
	if !ok {
		return p, ErrCorruptTable
	}
	p.LargestUser = append([]byte(nil), b...)
	p.SmallestSeq = kv.SeqNum(next())
	p.LargestSeq = kv.SeqNum(next())
	p.RawKeyBytes = next()
	p.RawValueBytes = next()
	p.NumBlocks = next()
	if !ok {
		return p, ErrCorruptTable
	}
	return p, nil
}

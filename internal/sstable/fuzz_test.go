package sstable

import (
	"bytes"
	"testing"

	"lsmkv/internal/filter"
	"lsmkv/internal/kv"
)

// FuzzDecodeBlock: arbitrary bytes must never panic the block decoder;
// valid blocks must round trip. (Seed corpus only under `go test`; run
// `go test -fuzz=FuzzDecodeBlock ./internal/sstable` to explore.)
func FuzzDecodeBlock(f *testing.F) {
	bb := newBlockBuilder(4, true)
	for i := 0; i < 20; i++ {
		bb.add(kv.MakeInternalKey([]byte{byte('a' + i)}, kv.SeqNum(i+1), kv.KindSet), []byte("v"))
	}
	valid := bb.finish()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(valid[:len(valid)/2])
	mut := append([]byte(nil), valid...)
	mut[3] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := decodeBlock(data)
		if err != nil {
			return // rejected input: fine
		}
		// Accepted input must iterate without panicking and in order.
		it := newBlockIter(blk)
		var prev kv.InternalKey
		n := 0
		for ok := it.First(); ok && n < 100000; ok = it.Next() {
			if n > 0 && kv.CompareInternal(prev, it.Key()) > 0 {
				// Only CRC-valid blocks reach here, so disorder means the
				// builder produced it — which the engine never does; for
				// fuzz inputs that merely pass CRC by construction this
				// cannot happen (CRC covers all bytes).
				t.Fatalf("accepted block iterates out of order")
			}
			prev = it.Key().Clone()
			n++
		}
	})
}

// FuzzOpenReader: arbitrary bytes must never panic the table opener.
func FuzzOpenReader(f *testing.F) {
	mf := &memFile{}
	w := NewWriter(mf, WriterOptions{BlockSize: 256})
	for i := 0; i < 50; i++ {
		w.Add(kv.MakeInternalKey([]byte{byte('a' + i%26), byte('0' + i/26)}, kv.SeqNum(i+1), kv.KindSet), []byte("v"))
	}
	w.Finish()
	valid := mf.buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add([]byte{})
	f.Add(valid[:40])
	mut := append([]byte(nil), valid...)
	mut[len(mut)-5] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenReader(bytes.NewReader(data), int64(len(data)), ReaderOptions{})
		if err != nil {
			return
		}
		// A reader that opened must serve a lookup without panicking.
		r.Get([]byte("a0"), filter.HashKey([]byte("a0")), kv.MaxSeqNum)
	})
}

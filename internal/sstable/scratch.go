// Read-path scratch pooling: the per-lookup working set of a point read
// (decoded block view, restart array, block iterator, encoded search
// key, and — when no block cache owns the bytes — the raw block buffer)
// is recycled through a sync.Pool so a cache-hit Get allocates nothing.

package sstable

import (
	"bytes"
	"sync"

	"lsmkv/internal/fence"
	"lsmkv/internal/filter"
	"lsmkv/internal/iostat"
	"lsmkv/internal/kv"
)

// readScratch bundles everything a single point lookup needs to borrow.
// It is reused across the blocks of one lookup and, via scratchPool,
// across lookups; nothing in it may escape GetAppend.
type readScratch struct {
	blk    block
	it     blockIter
	search []byte // encoded internal search key
	raw    []byte // block read buffer (cache-less path only)
}

var scratchPool = sync.Pool{New: func() any { return new(readScratch) }}

// putReadScratch drops the borrowed views into cached/raw bytes (so the
// pool does not pin evicted blocks) and recycles the scratch.
func putReadScratch(sc *readScratch) {
	sc.blk.data = nil
	sc.blk.hashIndex = fence.HashIndex{}
	sc.blk.hasHash = false
	sc.it.b = nil
	sc.it.val = nil
	scratchPool.Put(sc)
}

// readBlockInto is readBlock decoding into pooled scratch instead of a
// fresh block. On the cache-hit path it performs no allocation; on a
// miss with a cache configured it allocates only the raw buffer the
// cache takes ownership of; with no cache it reuses the scratch's own
// read buffer.
func (r *Reader) readBlockInto(sc *readScratch, h fence.BlockHandle, rt *iostat.RunTrace) error {
	c := r.opts.Cache
	if c != nil {
		if cached, ok := c.Get(r.opts.FileNum, h.Offset); ok {
			if r.opts.Stats != nil {
				r.opts.Stats.BlockCacheHits.Add(1)
			}
			if rt != nil {
				rt.CacheHits++
			}
			return decodeBlockInto(&sc.blk, cached)
		}
		if r.opts.Stats != nil {
			r.opts.Stats.BlockCacheMisses.Add(1)
		}
		if rt != nil {
			rt.CacheMisses++
		}
	}
	var raw []byte
	if c != nil {
		// The cache takes ownership of inserted bytes, so they must be
		// freshly allocated.
		raw = make([]byte, h.Length)
	} else if uint64(cap(sc.raw)) >= h.Length {
		raw = sc.raw[:h.Length]
	} else {
		raw = make([]byte, h.Length)
		sc.raw = raw
	}
	if _, err := r.f.ReadAt(raw, int64(h.Offset)); err != nil {
		return err
	}
	if r.opts.Stats != nil {
		r.opts.Stats.BlockReads.Add(1)
		r.opts.Stats.BytesRead.Add(int64(h.Length))
	}
	if rt != nil {
		rt.BlockReads++
	}
	if c != nil {
		c.Insert(r.opts.FileNum, h.Offset, raw)
	}
	return decodeBlockInto(&sc.blk, raw)
}

// GetAppend is Get with the found value appended to dst (which may be
// nil) instead of freshly allocated, and the block-level work recorded
// into rt when non-nil. It is the engine's steady-state point-read
// entry: with the target block resident in the cache it performs zero
// heap allocations.
func (r *Reader) GetAppend(userKey []byte, kh filter.KeyHash, seq kv.SeqNum, dst []byte, rt *iostat.RunTrace) (value []byte, kind kv.Kind, found bool, err error) {
	sc := scratchPool.Get().(*readScratch)
	defer putReadScratch(sc)
	sc.search = kv.MakeSearchKey(userKey, seq).Encode(sc.search[:0])
	b := r.findStartBlock(userKey)
	if rt != nil {
		rt.StartBlock = b
		rt.LearnedIndex = r.model != nil
		if r.partitions != nil {
			rt.Filter = iostat.FilterPartitioned
		}
	}
	touched := false
	for ; b < r.index.Len(); b++ {
		// Once fences pass the user key, no later block can hold it.
		if bytes.Compare(r.index.Entry(b).FirstKey, userKey) > 0 {
			break
		}
		if r.partitions != nil {
			if r.opts.Stats != nil {
				r.opts.Stats.FilterProbes.Add(1)
			}
			if !r.partitions[b].MayContainHash(kh) {
				if r.opts.Stats != nil {
					r.opts.Stats.FilterNegatives.Add(1)
				}
				if rt != nil {
					rt.PartitionNegatives++
				}
				continue
			}
		}
		if err := r.readBlockInto(sc, r.index.Entry(b).Handle, rt); err != nil {
			return dst, 0, false, err
		}
		touched = true
		if rt != nil {
			rt.Blocks++
		}
		it := &sc.it
		it.reset(&sc.blk)
		var ok bool
		if r.opts.UseBlockHashIndex && sc.blk.hasHash {
			restart, res := sc.blk.hashIndex.Lookup(userKey)
			switch res {
			case fence.LookupMiss:
				continue // definitely not in this block
			case fence.LookupHit:
				ok = it.scanFrom(restart, sc.search)
				// The hash index may point at the restart interval where
				// the key lives, but the visible version can precede the
				// search key within it; a miss here is authoritative for
				// this block only.
			default:
				ok = it.seekGEEnc(sc.search)
			}
		} else {
			ok = it.seekGEEnc(sc.search)
		}
		if it.Error() != nil {
			return dst, 0, false, it.Error()
		}
		if !ok {
			continue // exhausted this block; key may continue in the next
		}
		ik := it.Key()
		if bytes.Equal(ik.UserKey, userKey) {
			return append(dst, it.val...), ik.Kind, true, nil
		}
		break // landed on a later user key: no visible version exists
	}
	if touched {
		// The filter (or absence of one) admitted the probe but the key
		// was not here: a superfluous storage access.
		if r.opts.Stats != nil {
			r.opts.Stats.FilterFalsePositives.Add(1)
		}
		if rt != nil {
			rt.FalsePositive = true
		}
	}
	return dst, 0, false, nil
}

package sstable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lsmkv/internal/kv"
)

// buildBlock encodes entries and decodes the block.
func buildBlock(t testing.TB, restartInterval int, hashIndex bool, entries []kv.Entry) *block {
	t.Helper()
	bb := newBlockBuilder(restartInterval, hashIndex)
	for _, e := range entries {
		bb.add(e.Key, e.Value)
	}
	blk, err := decodeBlock(bb.finish())
	if err != nil {
		t.Fatalf("decodeBlock: %v", err)
	}
	return blk
}

func sortedEntries(n int, seed int64) []kv.Entry {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]kv.Entry, 0, n)
	seq := kv.SeqNum(n + 1)
	var prev string
	for i := 0; i < n; i++ {
		// Random keys with shared prefixes to stress prefix compression.
		k := fmt.Sprintf("pre%04d/%02d", rng.Intn(n), rng.Intn(4))
		if k <= prev {
			continue
		}
		prev = k
		seq--
		entries = append(entries, kv.Entry{
			Key:   kv.MakeInternalKey([]byte(k), seq, kv.KindSet),
			Value: []byte(fmt.Sprintf("val-%d", i)),
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		return kv.CompareInternal(entries[i].Key, entries[j].Key) < 0
	})
	return entries
}

func TestBlockRoundTripAllEntries(t *testing.T) {
	for _, interval := range []int{1, 4, 16} {
		for _, hashIdx := range []bool{false, true} {
			entries := sortedEntries(500, 7)
			blk := buildBlock(t, interval, hashIdx, entries)
			it := newBlockIter(blk)
			i := 0
			for ok := it.First(); ok; ok = it.Next() {
				if kv.CompareInternal(it.Key(), entries[i].Key) != 0 {
					t.Fatalf("interval=%d hash=%v entry %d: key %s want %s",
						interval, hashIdx, i, it.Key(), entries[i].Key)
				}
				if string(it.Value()) != string(entries[i].Value) {
					t.Fatalf("entry %d value mismatch", i)
				}
				i++
			}
			if it.Error() != nil {
				t.Fatal(it.Error())
			}
			if i != len(entries) {
				t.Fatalf("iterated %d of %d entries", i, len(entries))
			}
		}
	}
}

func TestBlockSeekGEMatchesLinearScan(t *testing.T) {
	entries := sortedEntries(300, 9)
	blk := buildBlock(t, 8, false, entries)
	it := newBlockIter(blk)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		target := kv.MakeSearchKey(
			[]byte(fmt.Sprintf("pre%04d/%02d", rng.Intn(350), rng.Intn(5))),
			kv.MaxSeqNum)
		// Linear-scan truth.
		want := -1
		for i, e := range entries {
			if kv.CompareInternal(e.Key, target) >= 0 {
				want = i
				break
			}
		}
		ok := it.SeekGE(target)
		if want == -1 {
			if ok {
				t.Fatalf("SeekGE(%s) found %s want exhausted", target, it.Key())
			}
			continue
		}
		if !ok {
			t.Fatalf("SeekGE(%s) exhausted, want %s", target, entries[want].Key)
		}
		if kv.CompareInternal(it.Key(), entries[want].Key) != 0 {
			t.Fatalf("SeekGE(%s) = %s want %s", target, it.Key(), entries[want].Key)
		}
	}
}

func TestBlockDecodeRejectsCorruption(t *testing.T) {
	entries := sortedEntries(50, 11)
	bb := newBlockBuilder(8, true)
	for _, e := range entries {
		bb.add(e.Key, e.Value)
	}
	raw := bb.finish()
	// Every single-byte flip must be caught by the CRC.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), raw...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		if _, err := decodeBlock(mut); err == nil {
			t.Fatal("bit flip not detected")
		}
	}
	// Truncations must fail too.
	for _, n := range []int{0, 1, 4, len(raw) / 2, len(raw) - 1} {
		if _, err := decodeBlock(raw[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

// TestBlockPropertyQuick: arbitrary key/value bytes survive the block
// encoding (via testing/quick over short random pairs).
func TestBlockPropertyQuick(t *testing.T) {
	f := func(keys [][]byte, values [][]byte) bool {
		// Build a sorted, deduped entry list from the fuzz input.
		n := len(keys)
		if len(values) < n {
			n = len(values)
		}
		if n == 0 {
			return true
		}
		uniq := map[string][]byte{}
		for i := 0; i < n; i++ {
			if len(keys[i]) == 0 {
				continue
			}
			uniq[string(keys[i])] = values[i]
		}
		var sortedKeys []string
		for k := range uniq {
			sortedKeys = append(sortedKeys, k)
		}
		sort.Strings(sortedKeys)
		bb := newBlockBuilder(4, true)
		var entries []kv.Entry
		for i, k := range sortedKeys {
			e := kv.Entry{
				Key:   kv.MakeInternalKey([]byte(k), kv.SeqNum(i+1), kv.KindSet),
				Value: uniq[k],
			}
			entries = append(entries, e)
			bb.add(e.Key, e.Value)
		}
		if len(entries) == 0 {
			return true
		}
		blk, err := decodeBlock(bb.finish())
		if err != nil {
			return false
		}
		it := newBlockIter(blk)
		i := 0
		for ok := it.First(); ok; ok = it.Next() {
			if i >= len(entries) ||
				kv.CompareInternal(it.Key(), entries[i].Key) != 0 ||
				string(it.Value()) != string(entries[i].Value) {
				return false
			}
			i++
		}
		return i == len(entries) && it.Error() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

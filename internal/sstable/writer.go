package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"lsmkv/internal/fence"
	"lsmkv/internal/filter"
	"lsmkv/internal/kv"
	"lsmkv/internal/learned"
	"lsmkv/internal/rangefilter"
)

// LearnedKind selects the learned index model stored alongside the fence
// pointers.
type LearnedKind uint8

const (
	// LearnedNone stores no model; block lookup binary-searches fences.
	LearnedNone LearnedKind = 0
	// LearnedPLR stores a bounded-error piecewise-linear model.
	LearnedPLR LearnedKind = 1
	// LearnedRadixSpline stores a RadixSpline model.
	LearnedRadixSpline LearnedKind = 2
)

// WriterOptions configures the physical layout of one table — the
// storage-facing half of the read-optimization design space.
type WriterOptions struct {
	// BlockSize is the uncompressed data-block size target in bytes.
	// Default 4096.
	BlockSize int
	// RestartInterval is the entry spacing of restart points. Default 16.
	RestartInterval int
	// Filter is the point-filter policy for this table.
	Filter filter.Policy
	// FilterPartitioned builds one filter per data block instead of one
	// per table (RocksDB partitioned filters).
	FilterPartitioned bool
	// RangeFilter is the range-filter policy for this table.
	RangeFilter rangefilter.Policy
	// BlockHashIndex appends a data-block hash index to every block.
	BlockHashIndex bool
	// Learned selects a learned index model over block fences.
	Learned LearnedKind
	// ExpectedEntries sizes filter builders; 0 uses a default.
	ExpectedEntries int
}

func (o *WriterOptions) withDefaults() WriterOptions {
	out := *o
	if out.BlockSize <= 0 {
		out.BlockSize = 4096
	}
	if out.RestartInterval <= 0 {
		out.RestartInterval = 16
	}
	if out.ExpectedEntries <= 0 {
		out.ExpectedEntries = out.BlockSize // ~one key per byte? just a hint floor
	}
	return out
}

const (
	footerLen   = 5*16 + 1 + 8
	tableMagic  = 0x4c534d4b56535354 // "LSMKVSST"
	flagPartFil = 1 << 0
)

// Writer builds one sstable from entries added in strictly increasing
// internal-key order.
type Writer struct {
	w    io.Writer
	opts WriterOptions

	offset  uint64
	block   *blockBuilder
	fences  fence.Builder
	filters *filterState
	rfb     rangefilter.Builder
	props   Properties

	blockFirstUser []byte // first user key of the block being built
	lastKey        kv.InternalKey
	hasLast        bool
	finished       bool

	// partition filters (one per block) when FilterPartitioned.
	partitions [][]byte
}

// filterState tracks the in-progress point filter(s).
type filterState struct {
	policy      filter.Policy
	partitioned bool
	builder     filter.Builder // current (table-wide or per-block)
	perBlock    int
}

// NewWriter creates a table writer over w.
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	o := opts.withDefaults()
	tw := &Writer{
		w:     w,
		opts:  o,
		block: newBlockBuilder(o.RestartInterval, o.BlockHashIndex),
		rfb:   o.RangeFilter.NewBuilder(o.ExpectedEntries),
	}
	if o.Filter.Kind != filter.KindNone {
		tw.filters = &filterState{policy: o.Filter, partitioned: o.FilterPartitioned}
		if o.FilterPartitioned {
			tw.filters.builder = o.Filter.NewBuilder(o.BlockSize / 32)
		} else {
			tw.filters.builder = o.Filter.NewBuilder(o.ExpectedEntries)
		}
	}
	return tw
}

// Add appends an entry. Keys must arrive in strictly increasing internal
// key order.
func (tw *Writer) Add(ikey kv.InternalKey, value []byte) error {
	if tw.finished {
		return errors.New("sstable: Add after Finish")
	}
	if tw.hasLast && kv.CompareInternal(ikey, tw.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %s after %s", ikey, tw.lastKey)
	}
	if tw.block.empty() {
		tw.blockFirstUser = append(tw.blockFirstUser[:0], ikey.UserKey...)
	}
	tw.block.add(ikey, value)
	if tw.filters != nil {
		tw.filters.builder.AddHash(filter.HashKey(ikey.UserKey))
		tw.filters.perBlock++
	}
	if !tw.hasLast || string(ikey.UserKey) != string(tw.lastKey.UserKey) {
		// Range filters and properties dedup on user keys.
		if err := tw.rfb.AddKey(ikey.UserKey); err != nil {
			return err
		}
	}

	// Properties bookkeeping.
	if tw.props.NumEntries == 0 {
		tw.props.SmallestUser = append([]byte(nil), ikey.UserKey...)
		tw.props.SmallestSeq = ikey.Seq
		tw.props.LargestSeq = ikey.Seq
	}
	tw.props.LargestUser = append(tw.props.LargestUser[:0], ikey.UserKey...)
	if ikey.Seq < tw.props.SmallestSeq {
		tw.props.SmallestSeq = ikey.Seq
	}
	if ikey.Seq > tw.props.LargestSeq {
		tw.props.LargestSeq = ikey.Seq
	}
	tw.props.NumEntries++
	if ikey.Kind == kv.KindDelete {
		tw.props.NumTombstones++
	}
	tw.props.RawKeyBytes += uint64(ikey.Size())
	tw.props.RawValueBytes += uint64(len(value))

	tw.lastKey = ikey.Clone()
	tw.hasLast = true

	if tw.block.estimatedSize() >= tw.opts.BlockSize {
		return tw.flushBlock()
	}
	return nil
}

func (tw *Writer) flushBlock() error {
	if tw.block.empty() {
		return nil
	}
	raw := tw.block.finish()
	h := fence.BlockHandle{Offset: tw.offset, Length: uint64(len(raw))}
	if _, err := tw.w.Write(raw); err != nil {
		return err
	}
	tw.offset += uint64(len(raw))
	tw.fences.Add(tw.blockFirstUser, h)
	tw.props.NumBlocks++
	tw.block.reset()
	if tw.filters != nil && tw.filters.partitioned {
		data, err := tw.filters.builder.Finish()
		if err != nil {
			return err
		}
		tw.partitions = append(tw.partitions, data)
		tw.filters.builder = tw.filters.policy.NewBuilder(maxInt(tw.filters.perBlock, 16))
		tw.filters.perBlock = 0
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writeRaw writes an auxiliary block (no compression, no trailer beyond
// what the payload carries) and returns its handle.
func (tw *Writer) writeRaw(data []byte) (fence.BlockHandle, error) {
	h := fence.BlockHandle{Offset: tw.offset, Length: uint64(len(data))}
	if len(data) == 0 {
		return h, nil
	}
	if _, err := tw.w.Write(data); err != nil {
		return h, err
	}
	tw.offset += uint64(len(data))
	return h, nil
}

// Finish flushes the last block, writes the auxiliary blocks and footer,
// and returns the table's properties. The writer is unusable afterwards.
func (tw *Writer) Finish() (Properties, uint64, error) {
	if tw.finished {
		return tw.props, tw.offset, errors.New("sstable: double Finish")
	}
	tw.finished = true
	if err := tw.flushBlock(); err != nil {
		return tw.props, 0, err
	}

	// Filter block.
	var filterData []byte
	var flags byte
	if tw.filters != nil {
		if tw.filters.partitioned {
			flags |= flagPartFil
			filterData = binary.AppendUvarint(nil, uint64(len(tw.partitions)))
			for _, p := range tw.partitions {
				filterData = kv.AppendLengthPrefixed(filterData, p)
			}
		} else {
			var err error
			filterData, err = tw.filters.builder.Finish()
			if err != nil {
				return tw.props, 0, err
			}
		}
	}
	filterHandle, err := tw.writeRaw(filterData)
	if err != nil {
		return tw.props, 0, err
	}

	// Range filter block.
	rfData, err := tw.rfb.Finish()
	if err != nil {
		return tw.props, 0, err
	}
	rfHandle, err := tw.writeRaw(rfData)
	if err != nil {
		return tw.props, 0, err
	}

	// Learned index block over block-fence keys.
	var learnedData []byte
	if tw.opts.Learned != LearnedNone && tw.fences.Count() > 0 {
		xs := make([]uint64, tw.fences.Count())
		idx := tw.fences.Build()
		for i := 0; i < idx.Len(); i++ {
			xs[i] = learned.KeyToUint64(idx.Entry(i).FirstKey)
		}
		switch tw.opts.Learned {
		case LearnedPLR:
			learnedData = learned.BuildPLR(xs, 4).Encode()
		case LearnedRadixSpline:
			learnedData = learned.BuildRadixSpline(xs, 4, 12).Encode()
		}
	}
	flags |= byte(tw.opts.Learned) << 2
	learnedHandle, err := tw.writeRaw(learnedData)
	if err != nil {
		return tw.props, 0, err
	}

	// Index (fence) block.
	indexHandle, err := tw.writeRaw(tw.fences.Encode())
	if err != nil {
		return tw.props, 0, err
	}

	// Properties block.
	propsHandle, err := tw.writeRaw(tw.props.encode())
	if err != nil {
		return tw.props, 0, err
	}

	// Footer.
	var footer [footerLen]byte
	writeHandle := func(off int, h fence.BlockHandle) {
		binary.LittleEndian.PutUint64(footer[off:], h.Offset)
		binary.LittleEndian.PutUint64(footer[off+8:], h.Length)
	}
	writeHandle(0, indexHandle)
	writeHandle(16, filterHandle)
	writeHandle(32, rfHandle)
	writeHandle(48, learnedHandle)
	writeHandle(64, propsHandle)
	footer[80] = flags
	binary.LittleEndian.PutUint64(footer[81:], tableMagic)
	if _, err := tw.w.Write(footer[:]); err != nil {
		return tw.props, 0, err
	}
	tw.offset += footerLen
	return tw.props, tw.offset, nil
}

// EstimatedSize returns the bytes written so far plus the current block.
func (tw *Writer) EstimatedSize() uint64 {
	return tw.offset + uint64(tw.block.estimatedSize())
}

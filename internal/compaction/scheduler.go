package compaction

import (
	"fmt"
	"sync"
	"time"
)

// Scheduler hands compaction tasks to a pool of concurrent workers while
// guaranteeing that no two in-flight tasks overlap. It wraps the Picker
// (which plans against immutable tree views and knows nothing about
// concurrency) with a claim table:
//
//   - Every task claims its source and target levels. Two tasks with
//     intersecting level sets never run together: a task reads whole
//     runs/files of its source and splices output into its target's
//     first run (or appends a fresh run), so a concurrent job touching
//     either level could observe files mid-deletion, interleave
//     overlapping files into one sorted run, or install runs out of age
//     order.
//   - Every task also claims its individual input/target file numbers.
//     Level claims already imply file disjointness; the file table is a
//     belt-and-braces invariant check (Next panics on a violation, which
//     the race tests exercise hard).
//
// Priority follows the write path's needs: level-0 relief first (an
// overloaded L0 stalls writers), then deeper levels by descending
// pressure score — the flush>L0>score ordering, with flushes handled by
// the engine's dedicated flush worker above this package.
//
// All methods are safe for concurrent use. The Picker's internal state
// (the round-robin cursor) is only ever touched under the Scheduler's
// lock, so callers must route every planning call through the Scheduler
// once one exists.
type Scheduler struct {
	mu       sync.Mutex
	picker   *Picker
	levels   map[int]bool    // claimed levels of in-flight tasks
	files    map[uint64]bool // claimed file numbers of in-flight tasks
	inflight int
}

// NewScheduler wraps picker. The picker must not be used directly once
// the scheduler owns it.
func NewScheduler(picker *Picker) *Scheduler {
	return &Scheduler{
		picker: picker,
		levels: make(map[int]bool),
		files:  make(map[uint64]bool),
	}
}

// Next plans and claims the most urgent task that does not conflict with
// any in-flight task, or returns nil when no admissible work exists.
// The caller must call Done(task) exactly once when the task finishes
// (successfully or not).
func (s *Scheduler) Next(levels []LevelView) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.picker.PickUnder(levels, s.admissibleLocked)
	if t == nil {
		return nil
	}
	s.claimLocked(t)
	return t
}

// admissibleLocked reports whether t conflicts with no in-flight task.
func (s *Scheduler) admissibleLocked(t *Task) bool {
	for _, l := range t.Levels() {
		if s.levels[l] {
			return false
		}
	}
	return true
}

// claimLocked marks t's levels and files in-flight. A file already
// claimed despite disjoint levels means the level-claim invariant is
// broken somewhere — that is a bug worth dying loudly for, not a
// recoverable condition.
func (s *Scheduler) claimLocked(t *Task) {
	for _, l := range t.Levels() {
		s.levels[l] = true
	}
	for _, f := range t.InputFiles {
		if s.files[f.Num] {
			panic(fmt.Sprintf("compaction: file %d claimed by two concurrent tasks", f.Num))
		}
		s.files[f.Num] = true
	}
	for _, f := range t.TargetFiles {
		if s.files[f.Num] {
			panic(fmt.Sprintf("compaction: file %d claimed by two concurrent tasks", f.Num))
		}
		s.files[f.Num] = true
	}
	s.inflight++
}

// Done releases t's claims, unblocking conflicting candidates.
func (s *Scheduler) Done(t *Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range t.Levels() {
		delete(s.levels, l)
	}
	for _, f := range t.InputFiles {
		delete(s.files, f.Num)
	}
	for _, f := range t.TargetFiles {
		delete(s.files, f.Num)
	}
	s.inflight--
}

// Reshape swaps the scheduler's picker for one planning against shape,
// so the next planning call sees the new policy. In-flight tasks are
// unaffected: each carries its own immutable plan, and the claim table
// (which outlives the picker) keeps new plans disjoint from them. The
// round-robin fairness cursor resets — acceptable, since reshaping is a
// rare tuning action, not a steady-state path.
func (s *Scheduler) Reshape(shape Shape) error {
	p, err := NewPicker(shape)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.picker = p
	s.mu.Unlock()
	return nil
}

// InFlight returns the number of claimed, unfinished tasks.
func (s *Scheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Quiesced reports whether no task is in flight and the tree needs no
// compaction — the "background work is finished" predicate.
func (s *Scheduler) Quiesced(levels []LevelView) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight > 0 {
		return false
	}
	return s.picker.PickUnder(levels, nil) == nil
}

// RateLimiter is a token bucket metering background write bytes, shared
// by every concurrent compaction job so the configured ceiling bounds
// their *combined* rate. (A per-job wall-clock pacer — the previous
// design — undercounts as soon as two jobs overlap: each believes it has
// the whole budget.)
//
// Admission is gated: a caller blocks until the bucket holds its tokens
// (capped at the burst for oversized writes) and only then debits them.
// An unbounded-deficit design — debit first, sleep the debt off — lets
// concurrent deep merges drive the shared deficit many chunks negative,
// and whichever urgent L0 job arrives next inherits the whole backlog as
// one giant sleep; gating bounds the debt any single caller can leave
// behind to one chunk.
//
// The limiter extends the scheduler's flush > L0 > deeper ordering into
// the bandwidth plane: urgent callers (L0->L1 jobs, the ones writers
// stall behind) have their pending demand reserved out of the refill, so
// deep merges cannot starve level-0 relief no matter how many of them
// run. Without the reservation a pool is no better than one worker under
// a binding rate limit — L0 relief would get 1/N of the bandwidth
// instead of all of it. A nil *RateLimiter is the disabled limiter;
// WaitFor on it returns immediately.
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64 // cap on accumulated idle credit
	avail  float64
	urgent float64 // tokens urgent waiters are currently queued for
	last   time.Time
}

// NewRateLimiter returns a limiter metering bytesPerSec, or nil (the
// no-op limiter) when bytesPerSec <= 0. The burst is one second of rate:
// a job may briefly exceed the ceiling after an idle period, but never
// by more than one second's budget.
func NewRateLimiter(bytesPerSec int64) *RateLimiter {
	if bytesPerSec <= 0 {
		return nil
	}
	return &RateLimiter{
		rate:  float64(bytesPerSec),
		burst: float64(bytesPerSec),
		avail: float64(bytesPerSec),
		last:  time.Now(),
	}
}

// WaitFor blocks until the shared budget holds n bytes of credit (capped
// at the burst, so a write larger than the bucket can still pass), then
// debits the full n. Urgent callers see the whole budget; normal callers
// only see what's left after every queued urgent demand is reserved, so
// level-0 relief preempts deep merges on the bandwidth plane. Nil-safe.
func (r *RateLimiter) WaitFor(n int64, isUrgent bool) {
	if r == nil || n <= 0 {
		return
	}
	need := float64(n)
	if need > r.burst {
		need = r.burst
	}
	registered := false
	for {
		r.mu.Lock()
		now := time.Now()
		r.avail += now.Sub(r.last).Seconds() * r.rate
		if r.avail > r.burst {
			r.avail = r.burst
		}
		r.last = now
		if isUrgent && !registered {
			r.urgent += need
			registered = true
		}
		gate := need
		if !isUrgent {
			gate += r.urgent
		}
		if r.avail >= gate {
			r.avail -= float64(n)
			if registered {
				r.urgent -= need
			}
			r.mu.Unlock()
			return
		}
		wait := time.Duration((gate - r.avail) / r.rate * float64(time.Second))
		r.mu.Unlock()
		// Re-check after sleeping rather than trusting the computed wait:
		// another worker may have taken the refill first, or — for a
		// normal caller — new urgent demand may have arrived. Cap the
		// sleep so a normal caller parked behind a large urgent reserve
		// notices promptly once it drains.
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

// Package compaction implements the planning half of the LSM compaction
// design space, factored along the four first-order primitives of Sarkar
// et al. (VLDB'21): the *trigger* (when to compact), the *data layout*
// (how many sorted runs a level may hold), the *granularity* (whole levels
// vs single files), and the *data movement policy* (which file to pick).
//
// One parameterized picker covers the classic layouts as points in the
// space, following Dostoevsky's K/Z formulation (Dayan & Idreos,
// SIGMOD'18):
//
//	leveling       K=1,   Z=1
//	tiering        K=T-1, Z=T-1
//	lazy leveling  K=T-1, Z=1   (tiered inner levels, leveled last level)
//	hybrid         any K, Z in between (the LSM-bush/Wacky continuum
//	               direction of arbitrary per-level run counts)
//
// The package plans over immutable views of the tree and returns Tasks;
// the engine executes them. Two layers share the work: the Picker plans
// single tasks against a tree view (stateless but for the round-robin
// cursor), and the Scheduler hands tasks to a pool of concurrent
// compaction workers, claiming disjoint level/file sets so no two
// in-flight jobs overlap, ordering candidates L0-first then by pressure
// score, and metering their combined write rate through one shared
// token-bucket RateLimiter.
package compaction

import (
	"bytes"
	"fmt"
)

// FileView is the planner's read-only view of one table file.
type FileView struct {
	Num        uint64
	Size       uint64
	Smallest   []byte // smallest user key
	Largest    []byte // largest user key
	Entries    uint64
	Tombstones uint64
	Seq        uint64 // creation order; lower = older
}

// RunView is a sorted run: files sorted by Smallest, non-overlapping.
type RunView struct {
	Files []FileView
}

// Size returns the run's total bytes.
func (r RunView) Size() uint64 {
	var s uint64
	for _, f := range r.Files {
		s += f.Size
	}
	return s
}

// LevelView is one level: one or more runs.
type LevelView struct {
	Runs []RunView
}

// Size returns the level's total bytes.
func (l LevelView) Size() uint64 {
	var s uint64
	for _, r := range l.Runs {
		s += r.Size()
	}
	return s
}

// Granularity selects how much data one compaction moves.
type Granularity int

const (
	// WholeLevel merges every selected run in full (classic leveling /
	// tiering; larger, less frequent compactions).
	WholeLevel Granularity = iota
	// SingleFile moves one file at a time (partial compaction à la
	// LevelDB/RocksDB; smaller compactions, smoother tail latency). Only
	// meaningful when the source level holds a single run (K=1).
	SingleFile
)

func (g Granularity) String() string {
	if g == SingleFile {
		return "single-file"
	}
	return "whole-level"
}

// FilePicker selects which file a SingleFile compaction moves — the data
// movement policy primitive.
type FilePicker int

const (
	// PickRoundRobin cycles through the key space (LevelDB's policy).
	PickRoundRobin FilePicker = iota
	// PickMinOverlap chooses the file with the least overlapping bytes in
	// the target level, minimizing write amplification.
	PickMinOverlap
	// PickMostTombstones chooses the file with the highest tombstone
	// density, maximizing reclaimed space (Lethe-style delete-awareness).
	PickMostTombstones
	// PickOldest chooses the file that has been in the level longest
	// (cold data first).
	PickOldest
)

func (p FilePicker) String() string {
	switch p {
	case PickMinOverlap:
		return "min-overlap"
	case PickMostTombstones:
		return "most-tombstones"
	case PickOldest:
		return "oldest"
	default:
		return "round-robin"
	}
}

// Shape fixes the tree's layout parameters — the tunable design point.
type Shape struct {
	// SizeRatio T: each level holds T times its predecessor.
	SizeRatio int
	// K is the maximum number of runs in inner levels (1..T-1).
	K int
	// Z is the maximum number of runs in the last level (1..T-1).
	Z int
	// L0Trigger is the run count in level 0 that forces a flush-out.
	L0Trigger int
	// BaseBytes is the capacity of level 1 in bytes (typically buffer
	// size × T).
	BaseBytes uint64
	// Granularity and Picker select partial-compaction behavior for K=1
	// levels.
	Granularity Granularity
	Picker      FilePicker
	// MaxLevels bounds the tree depth (the final level absorbs overflow).
	MaxLevels int
}

// Validate normalizes and checks the shape.
func (s *Shape) Validate() error {
	if s.SizeRatio < 2 {
		s.SizeRatio = 10
	}
	if s.K < 1 {
		s.K = 1
	}
	if s.Z < 1 {
		s.Z = 1
	}
	if s.K > s.SizeRatio-1 {
		s.K = s.SizeRatio - 1
	}
	if s.Z > s.SizeRatio-1 {
		s.Z = s.SizeRatio - 1
	}
	if s.L0Trigger < 1 {
		s.L0Trigger = 4
	}
	if s.BaseBytes == 0 {
		s.BaseBytes = 8 << 20
	}
	if s.MaxLevels < 2 {
		s.MaxLevels = 7
	}
	if s.Granularity == SingleFile && s.K != 1 {
		return fmt.Errorf("compaction: single-file granularity requires K=1, have K=%d", s.K)
	}
	return nil
}

// LevelCapacity returns the byte capacity of storage level i (level 0 is
// capped by run count, not bytes).
func (s Shape) LevelCapacity(i int) uint64 {
	if i <= 0 {
		return 0
	}
	c := s.BaseBytes
	for j := 1; j < i; j++ {
		c *= uint64(s.SizeRatio)
	}
	return c
}

// MaxRuns returns the run budget of level i given the deepest populated
// level.
func (s Shape) MaxRuns(i, lastLevel int) int {
	if i == 0 {
		return s.L0Trigger
	}
	if i >= lastLevel {
		return s.Z
	}
	return s.K
}

// Task describes one compaction to execute.
type Task struct {
	// FromLevel is the source level.
	FromLevel int
	// InputFiles are the source files to merge (grouped per run in
	// planning order; the executor merges them all).
	InputFiles []FileView
	// TargetLevel receives the output.
	TargetLevel int
	// TargetFiles are the overlapping files in TargetLevel that must join
	// the merge (empty when the output is installed as a fresh run —
	// tiered movement).
	TargetFiles []FileView
	// FreshRun reports whether the output forms a new run in TargetLevel
	// (true) or replaces TargetFiles within the level's first run (false).
	FreshRun bool
	// Score is the pressure score of the source level at planning time
	// (1.0 = exactly at budget); the scheduler orders candidates by it.
	Score float64
	// Reason is a human-readable trigger description for logs.
	Reason string
}

// Levels returns the set of levels the task touches: its source and its
// target. Two tasks whose level sets intersect must never run
// concurrently — they could read files the other is deleting, or install
// overlapping outputs into the same run.
func (t *Task) Levels() []int {
	if t.FromLevel == t.TargetLevel {
		return []int{t.FromLevel}
	}
	return []int{t.FromLevel, t.TargetLevel}
}

// InputBytes returns the total bytes the task reads.
func (t *Task) InputBytes() uint64 {
	var s uint64
	for _, f := range t.InputFiles {
		s += f.Size
	}
	for _, f := range t.TargetFiles {
		s += f.Size
	}
	return s
}

// Overlaps reports whether key ranges [aLo,aHi] and [bLo,bHi] intersect.
func Overlaps(aLo, aHi, bLo, bHi []byte) bool {
	return bytes.Compare(aLo, bHi) <= 0 && bytes.Compare(bLo, aHi) <= 0
}

// OverlappingFiles returns the files of run intersecting [lo, hi].
func OverlappingFiles(run RunView, lo, hi []byte) []FileView {
	var out []FileView
	for _, f := range run.Files {
		if Overlaps(lo, hi, f.Smallest, f.Largest) {
			out = append(out, f)
		}
	}
	return out
}

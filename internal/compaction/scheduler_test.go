package compaction

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// schedShape is a leveled shape small enough that synthetic views
// overflow several levels at once.
func schedShape() Shape {
	s := Shape{SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 1000, MaxLevels: 6}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// mkFile builds a FileView spanning [lo, hi] decimal keys.
func mkFile(num uint64, size uint64, lo, hi int) FileView {
	return FileView{
		Num:      num,
		Size:     size,
		Smallest: []byte(fmt.Sprintf("%08d", lo)),
		Largest:  []byte(fmt.Sprintf("%08d", hi)),
		Entries:  size / 100,
		Seq:      num,
	}
}

// fullRun is a one-file run covering the whole key space.
func fullRun(num, size uint64) RunView {
	return RunView{Files: []FileView{mkFile(num, size, 0, 99999999)}}
}

// overloadedViews builds a tree with L0 over its run trigger and L2 far
// over its byte capacity, with nothing in between conflicting.
func overloadedViews() []LevelView {
	v := make([]LevelView, 6)
	v[0].Runs = []RunView{fullRun(1, 500), fullRun(2, 500), fullRun(3, 500)}
	// L2 capacity is BaseBytes*T = 4000; 40000 gives score 10, far above
	// L0's 1.5 — score order alone would pick L2 first.
	v[2].Runs = []RunView{fullRun(10, 40000)}
	v[3].Runs = []RunView{fullRun(11, 15000)} // keeps L2 from being the last level
	return v
}

func TestSchedulerPriorityL0First(t *testing.T) {
	s := NewScheduler(mustPicker(t, schedShape()))
	task := s.Next(overloadedViews())
	if task == nil {
		t.Fatal("no task from an overloaded tree")
	}
	if task.FromLevel != 0 {
		t.Fatalf("first task from L%d; level-0 relief must preempt higher scores", task.FromLevel)
	}
	if task.Score <= 1.0 {
		t.Errorf("task score %.2f; want > 1 for an over-budget level", task.Score)
	}
	s.Done(task)
}

func TestSchedulerDisjointClaims(t *testing.T) {
	s := NewScheduler(mustPicker(t, schedShape()))
	views := overloadedViews()

	t1 := s.Next(views)
	if t1 == nil || t1.FromLevel != 0 {
		t.Fatalf("first task: %+v; want L0 relief", t1)
	}
	// With L0 and L1 claimed by t1, the next admissible task must be the
	// L2 overflow.
	t2 := s.Next(views)
	if t2 == nil {
		t.Fatal("no second task despite disjoint L2 overflow")
	}
	if t2.FromLevel != 2 {
		t.Fatalf("second task from L%d; want 2", t2.FromLevel)
	}
	assertDisjoint(t, t1, t2)

	// Everything left conflicts (L3 is claimed as t2's target).
	if t3 := s.Next(views); t3 != nil {
		t.Fatalf("third task %+v conflicts with in-flight claims", t3)
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	// Releasing t1 re-admits L0 work.
	s.Done(t1)
	t4 := s.Next(views)
	if t4 == nil || t4.FromLevel != 0 {
		t.Fatalf("after Done, task %+v; want L0 relief again", t4)
	}
	s.Done(t2)
	s.Done(t4)
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all Done, want 0", got)
	}
}

func assertDisjoint(t *testing.T, a, b *Task) {
	t.Helper()
	al := map[int]bool{}
	for _, l := range a.Levels() {
		al[l] = true
	}
	for _, l := range b.Levels() {
		if al[l] {
			t.Fatalf("tasks share level %d: %q vs %q", l, a.Reason, b.Reason)
		}
	}
	af := map[uint64]bool{}
	for _, f := range append(a.InputFiles, a.TargetFiles...) {
		af[f.Num] = true
	}
	for _, f := range append(b.InputFiles, b.TargetFiles...) {
		if af[f.Num] {
			t.Fatalf("tasks share file %d: %q vs %q", f.Num, a.Reason, b.Reason)
		}
	}
}

// TestSchedulerQuiesced: in-flight work or pending candidates both mean
// not quiesced.
func TestSchedulerQuiesced(t *testing.T) {
	s := NewScheduler(mustPicker(t, schedShape()))
	views := overloadedViews()
	if s.Quiesced(views) {
		t.Fatal("overloaded tree reported quiesced")
	}
	task := s.Next(views)
	if s.Quiesced(make([]LevelView, 6)) {
		t.Fatal("in-flight task but tree reported quiesced")
	}
	s.Done(task)
	if !s.Quiesced(make([]LevelView, 6)) {
		t.Fatal("empty tree with no in-flight work not quiesced")
	}
}

// TestSchedulerStarvationFreedom: a long-running deep merge must not
// block L0 relief, and deep levels must still get their turn once the
// L0 backlog clears.
func TestSchedulerStarvationFreedom(t *testing.T) {
	s := NewScheduler(mustPicker(t, schedShape()))
	views := overloadedViews()

	// L0 always outranks deeper levels, so the deep merge is scheduled
	// only while an L0 task holds its claim — that is the point: one slot
	// serves L0, the rest drain deeper debt instead of idling.
	l0 := s.Next(views)
	if l0 == nil || l0.FromLevel != 0 {
		t.Fatalf("first task %+v; want L0 relief", l0)
	}
	deep := s.Next(views)
	if deep == nil || deep.FromLevel != 2 {
		t.Fatalf("second task %+v; want the deep L2 merge", deep)
	}

	// L0 relief keeps flowing while the deep merge stays in flight.
	s.Done(l0)
	for i := 0; i < 5; i++ {
		task := s.Next(views)
		if task == nil || task.FromLevel != 0 {
			t.Fatalf("iteration %d: task %+v; want L0 relief alongside deep merge", i, task)
		}
		assertDisjoint(t, deep, task)
		s.Done(task)
	}
	s.Done(deep)

	// With L0 relieved, the deep level is next in line again.
	views[0].Runs = nil
	task := s.Next(views)
	if task == nil || task.FromLevel != 2 {
		t.Fatalf("after L0 clears, task %+v; want L2 merge", task)
	}
	s.Done(task)
}

// TestSchedulerClaimRace hammers Next/Done from many goroutines and
// asserts every pair of concurrently-held tasks is disjoint in levels
// and files — the invariant concurrent compaction correctness rests on.
func TestSchedulerClaimRace(t *testing.T) {
	s := NewScheduler(mustPicker(t, schedShape()))
	views := overloadedViews()

	var (
		mu   sync.Mutex
		held = map[*Task]bool{}
	)
	checkAndHold := func(task *Task) {
		mu.Lock()
		defer mu.Unlock()
		for other := range held {
			// Raw invariant check (assertDisjoint is t.Helper-based and
			// not goroutine-safe to Fatal from; collect via Error).
			for _, l := range task.Levels() {
				for _, ol := range other.Levels() {
					if l == ol {
						t.Errorf("concurrent tasks share level %d", l)
					}
				}
			}
		}
		held[task] = true
	}
	release := func(task *Task) {
		mu.Lock()
		delete(held, task)
		mu.Unlock()
		s.Done(task)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				task := s.Next(views)
				if task == nil {
					continue
				}
				checkAndHold(task)
				if i%7 == 0 {
					time.Sleep(50 * time.Microsecond) // widen the overlap window
				}
				release(task)
			}
		}()
	}
	wg.Wait()
	if got := s.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all workers finished, want 0", got)
	}
}

func mustPicker(t *testing.T, shape Shape) *Picker {
	t.Helper()
	p, err := NewPicker(shape)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRateLimiterSharesBudget: two concurrent payers drawing from one
// bucket take at least totalBytes/rate seconds combined — the per-job
// wall-clock pacer this replaces would have let them finish in half
// that.
func TestRateLimiterSharesBudget(t *testing.T) {
	const rate = 1 << 20 // 1 MiB/s
	rl := NewRateLimiter(rate)
	rl.WaitFor(rate, false) // drain the initial burst credit

	const perWorker = 512 << 10 // 0.5 MiB each, 1 MiB total => >= ~1s shared
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for paid := 0; paid < perWorker; paid += 64 << 10 {
				rl.WaitFor(64<<10, false)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 700*time.Millisecond {
		t.Errorf("two workers moved 1 MiB through a 1 MiB/s shared bucket in %v; budget not shared", elapsed)
	}
}

// TestRateLimiterUrgentPreempts: while a normal (deep-merge) payer and
// an urgent (L0) payer both queue on an empty bucket, the urgent demand
// is reserved out of the refill — the urgent payer must clear first even
// though the normal payer asked earlier.
func TestRateLimiterUrgentPreempts(t *testing.T) {
	const rate = 1 << 20
	rl := NewRateLimiter(rate)
	rl.WaitFor(rate, false) // drain the initial burst credit

	var urgentDone, normalDone time.Time
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rl.WaitFor(256<<10, false)
		normalDone = time.Now()
	}()
	// Give the normal payer a head start in the queue.
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		rl.WaitFor(256<<10, true)
		urgentDone = time.Now()
	}()
	wg.Wait()
	if !urgentDone.Before(normalDone) {
		t.Errorf("urgent payer finished %v after the normal payer; urgent reservation not honored",
			urgentDone.Sub(normalDone))
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var rl *RateLimiter
	done := make(chan struct{})
	go func() {
		rl.WaitFor(1<<40, true)
		if NewRateLimiter(0) != nil {
			t.Error("NewRateLimiter(0) != nil")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("nil RateLimiter blocked")
	}
}

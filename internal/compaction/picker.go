package compaction

import (
	"bytes"
	"fmt"
	"sort"
)

// Picker plans compactions for a tree shaped by Shape. It is stateful only
// for the round-robin cursor; all tree state arrives as views.
type Picker struct {
	shape Shape
	// rrCursor remembers, per level, the largest key of the last
	// single-file compaction so round-robin picking cycles the key space.
	rrCursor map[int][]byte
}

// NewPicker validates the shape and returns a planner.
func NewPicker(shape Shape) (*Picker, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	return &Picker{shape: shape, rrCursor: make(map[int][]byte)}, nil
}

// Shape returns the validated shape.
func (p *Picker) Shape() Shape { return p.shape }

// lastPopulated returns the deepest level index holding data, or 0.
func lastPopulated(levels []LevelView) int {
	last := 0
	for i, l := range levels {
		if len(l.Runs) > 0 {
			last = i
		}
	}
	return last
}

// Pick returns the most urgent compaction task, or nil when the tree
// satisfies its shape. levels[0] is the first storage level (flushed
// runs); deeper levels follow.
func (p *Picker) Pick(levels []LevelView) *Task {
	return p.PickUnder(levels, nil)
}

// PickUnder returns the most urgent compaction task accepted by admit, or
// nil when no over-budget level yields an acceptable task. A nil admit
// accepts everything. Candidate levels are ordered by priority: level 0
// first (an overloaded L0 stalls writers, so its relief preempts
// everything), then deeper levels by descending pressure score — except
// that an over-budget merge target is always drained before its source
// (the cascade rule below). The
// Scheduler uses admit to skip tasks conflicting with in-flight jobs, so
// the planner is only invoked for levels actually considered — the
// round-robin cursor never advances for a level whose task was not taken.
func (p *Picker) PickUnder(levels []LevelView, admit func(*Task) bool) *Task {
	if len(levels) == 0 {
		return nil
	}
	last := lastPopulated(levels)

	type scored struct {
		level int
		score float64
	}
	var over []scored
	for i := 0; i <= last && i < len(levels); i++ {
		l := levels[i]
		if len(l.Runs) == 0 {
			continue
		}
		// Run-count pressure applies everywhere. Size pressure applies
		// only to leveled levels (run budget 1) that still have somewhere
		// to push data: tiered levels move on run count alone, as in
		// classic tiering.
		maxRuns := p.shape.MaxRuns(i, last)
		score := float64(len(l.Runs)) / float64(maxRuns)
		if i > 0 && i < p.shape.MaxLevels-1 && maxRuns == 1 {
			if sz := float64(l.Size()) / float64(p.shape.LevelCapacity(i)); sz > score {
				score = sz
			}
		}
		if score > 1.0 {
			over = append(over, scored{i, score})
		}
	}
	sort.Slice(over, func(a, b int) bool {
		sa, sb := over[a], over[b]
		if (sa.level == 0) != (sb.level == 0) {
			return sa.level == 0
		}
		if sa.score != sb.score {
			return sa.score > sb.score
		}
		return sa.level < sb.level
	})
	// Cascade rule: a *leveled* merge into a target that is itself over
	// budget only grows the run it must rewrite — and under concurrent
	// workers it starves the target's own compaction outright, because
	// the merge claims the target level and the top-priority source (L0
	// above all) re-claims it the moment it is released, so the target
	// balloons and every rewrite gets slower. So within every run of
	// adjacent over-budget levels joined by leveled moves, drain
	// deepest-first; chains keep their head's priority relative to other
	// candidates, and the scheduler's admit callback still lets disjoint
	// chain segments (L0->L1 alongside L2->L3) run in parallel. Tiered
	// moves are exempt: they append a fresh run without rewriting the
	// target, and reordering them just forces premature self-merges.
	leveledInto := func(i int) bool {
		target := i + 1
		budget := p.shape.K
		if target >= last || target == p.shape.MaxLevels-1 {
			budget = p.shape.Z
		}
		return budget == 1
	}
	inSet := make(map[int]bool, len(over))
	byLevel := make(map[int]scored, len(over))
	for _, s := range over {
		inSet[s.level] = true
		byLevel[s.level] = s
	}
	placed := make(map[int]bool, len(over))
	ordered := make([]scored, 0, len(over))
	for _, s := range over {
		if placed[s.level] {
			continue
		}
		top := s.level
		for inSet[top+1] && !placed[top+1] && leveledInto(top) {
			top++
		}
		for l := top; l >= s.level; l-- {
			ordered = append(ordered, byLevel[l])
			placed[l] = true
		}
	}
	over = ordered
	// blocked marks candidates that could not run this round; a shallower
	// chain member must not fall through past its blocked target — merging
	// into an over-budget run only deepens the hole, and (worse) the
	// merge's bandwidth demand would starve the very job holding the
	// target's claim. Refusing keeps the chain's head idle until the
	// blocker finishes, at which point the cascade drains it for real.
	// Chains are placed deepest-first above, so a member's target verdict
	// is always known before the member itself is considered.
	blocked := make(map[int]bool)
	for _, s := range over {
		if inSet[s.level+1] && blocked[s.level+1] && leveledInto(s.level) {
			blocked[s.level] = true
			continue
		}
		t := p.planLevel(levels, s.level, last)
		if t == nil {
			blocked[s.level] = true
			continue
		}
		t.Score = s.score
		if admit == nil || admit(t) {
			return t
		}
		blocked[s.level] = true
	}
	return nil
}

// planLevel builds the task that relieves level i.
func (p *Picker) planLevel(levels []LevelView, i, last int) *Task {
	src := levels[i]

	if i == p.shape.MaxLevels-1 {
		// The deepest allowed level self-merges its runs into one.
		t := &Task{
			FromLevel:   i,
			TargetLevel: i,
			FreshRun:    true,
			Reason:      fmt.Sprintf("L%d bottom self-merge (%d runs)", i, len(src.Runs)),
		}
		for _, r := range src.Runs {
			t.InputFiles = append(t.InputFiles, r.Files...)
		}
		return t
	}

	target := i + 1
	// The run budget of the *target* decides the movement policy: a
	// budget of 1 merges into the target's resident run (leveled move);
	// more than 1 installs the output as a fresh run (tiered move). The
	// target counts as "last" when it is at or beyond the deepest
	// populated level, or is the deepest allowed level.
	budget := p.shape.K
	if target >= last || target == p.shape.MaxLevels-1 {
		budget = p.shape.Z
	}

	// Partial compaction path: single-file granularity with a leveled
	// source and leveled target.
	if p.shape.Granularity == SingleFile && i > 0 && len(src.Runs) == 1 && budget == 1 {
		return p.planSingleFile(levels, i, target)
	}

	t := &Task{
		FromLevel:   i,
		TargetLevel: target,
		Reason:      fmt.Sprintf("L%d overflow (%d runs, %d bytes)", i, len(src.Runs), src.Size()),
	}
	var lo, hi []byte
	for _, r := range src.Runs {
		for _, f := range r.Files {
			t.InputFiles = append(t.InputFiles, f)
			if lo == nil || bytes.Compare(f.Smallest, lo) < 0 {
				lo = f.Smallest
			}
			if hi == nil || bytes.Compare(f.Largest, hi) > 0 {
				hi = f.Largest
			}
		}
	}
	if len(t.InputFiles) == 0 {
		return nil
	}
	if budget == 1 {
		if target < len(levels) && len(levels[target].Runs) > 0 {
			t.TargetFiles = OverlappingFiles(levels[target].Runs[0], lo, hi)
			t.FreshRun = false
		} else {
			t.FreshRun = true
		}
	} else {
		t.FreshRun = true
	}
	return t
}

// planSingleFile picks one source file per the movement policy and merges
// it with its overlap in the target level.
func (p *Picker) planSingleFile(levels []LevelView, i, target int) *Task {
	files := levels[i].Runs[0].Files
	if len(files) == 0 {
		return nil
	}
	var targetRun RunView
	if target < len(levels) && len(levels[target].Runs) > 0 {
		targetRun = levels[target].Runs[0]
	}

	pick := 0
	switch p.shape.Picker {
	case PickMinOverlap:
		best := ^uint64(0)
		for j, f := range files {
			var ov uint64
			for _, tf := range OverlappingFiles(targetRun, f.Smallest, f.Largest) {
				ov += tf.Size
			}
			if ov < best {
				best = ov
				pick = j
			}
		}
	case PickMostTombstones:
		best := -1.0
		for j, f := range files {
			var d float64
			if f.Entries > 0 {
				d = float64(f.Tombstones) / float64(f.Entries)
			}
			if d > best {
				best = d
				pick = j
			}
		}
	case PickOldest:
		bestSeq := ^uint64(0)
		for j, f := range files {
			if f.Seq < bestSeq {
				bestSeq = f.Seq
				pick = j
			}
		}
	default: // round-robin
		cursor := p.rrCursor[i]
		pick = 0
		found := false
		for j, f := range files {
			if cursor == nil || bytes.Compare(f.Smallest, cursor) > 0 {
				pick = j
				found = true
				break
			}
		}
		if !found {
			pick = 0 // wrap around
		}
		p.rrCursor[i] = append([]byte(nil), files[pick].Largest...)
	}

	f := files[pick]
	return &Task{
		FromLevel:   i,
		InputFiles:  []FileView{f},
		TargetLevel: target,
		TargetFiles: OverlappingFiles(targetRun, f.Smallest, f.Largest),
		FreshRun:    len(targetRun.Files) == 0,
		Reason:      fmt.Sprintf("L%d partial (%s picker, file %d)", i, p.shape.Picker, f.Num),
	}
}

package compaction

import (
	"fmt"
	"testing"
)

// sim is a structural simulator: it applies picker tasks to synthetic
// level views, tracking bytes moved (write amplification) without real
// I/O. Keys are fixed-width decimal strings over a circular key space.
type sim struct {
	t       *testing.T
	picker  *Picker
	levels  []LevelView
	nextNum uint64
	nextSeq uint64
	moved   uint64 // bytes written by compactions
	flushed uint64 // bytes written by flushes
}

func newSim(t *testing.T, shape Shape) *sim {
	p, err := NewPicker(shape)
	if err != nil {
		t.Fatal(err)
	}
	return &sim{
		t:      t,
		picker: p,
		levels: make([]LevelView, p.Shape().MaxLevels),
	}
}

// flush adds one full-key-space run of the given size to level 0.
func (s *sim) flush(size uint64) {
	s.nextNum++
	s.nextSeq++
	f := FileView{
		Num:      s.nextNum,
		Size:     size,
		Smallest: []byte("00000000"),
		Largest:  []byte("99999999"),
		Entries:  size / 100,
		Seq:      s.nextSeq,
	}
	s.levels[0].Runs = append(s.levels[0].Runs, RunView{Files: []FileView{f}})
	s.flushed += size
	s.drain()
}

// drain applies compactions until the shape is satisfied.
func (s *sim) drain() {
	for steps := 0; ; steps++ {
		if steps > 10000 {
			s.t.Fatal("compaction did not converge")
		}
		task := s.picker.Pick(s.levels)
		if task == nil {
			return
		}
		s.apply(task)
	}
}

// apply merges the task's inputs into one output file view and installs
// it per the task semantics.
func (s *sim) apply(t *Task) {
	var outSize uint64
	drop := map[uint64]bool{}
	for _, f := range t.InputFiles {
		outSize += f.Size
		drop[f.Num] = true
	}
	for _, f := range t.TargetFiles {
		outSize += f.Size
		drop[f.Num] = true
	}
	// Model update collapse: merging overlapping full-range runs discards
	// duplicate versions; approximate with a cap at the ideal level size.
	s.moved += outSize
	s.nextNum++
	s.nextSeq++
	out := FileView{
		Num:      s.nextNum,
		Size:     outSize,
		Smallest: []byte("00000000"),
		Largest:  []byte("99999999"),
		Entries:  outSize / 100,
		Seq:      s.nextSeq,
	}

	// Remove dropped files from every level, dropping empty runs.
	for li := range s.levels {
		var runs []RunView
		for _, r := range s.levels[li].Runs {
			var files []FileView
			for _, f := range r.Files {
				if !drop[f.Num] {
					files = append(files, f)
				}
			}
			if len(files) > 0 {
				runs = append(runs, RunView{Files: files})
			}
		}
		s.levels[li].Runs = runs
	}
	// Install output.
	tl := &s.levels[t.TargetLevel]
	if t.FreshRun || len(tl.Runs) == 0 {
		tl.Runs = append(tl.Runs, RunView{Files: []FileView{out}})
	} else {
		tl.Runs[0].Files = append(tl.Runs[0].Files, out)
	}
}

func (s *sim) runCounts() []int {
	out := make([]int, len(s.levels))
	for i, l := range s.levels {
		out[i] = len(l.Runs)
	}
	return out
}

func (s *sim) writeAmp() float64 {
	if s.flushed == 0 {
		return 0
	}
	return float64(s.flushed+s.moved) / float64(s.flushed)
}

func shapes(T int) map[string]Shape {
	return map[string]Shape{
		"leveling": {SizeRatio: T, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10, MaxLevels: 6},
		"tiering":  {SizeRatio: T, K: T - 1, Z: T - 1, L0Trigger: 2, BaseBytes: 4 << 10, MaxLevels: 6},
		"lazy":     {SizeRatio: T, K: T - 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10, MaxLevels: 6},
	}
}

func TestShapesMaintainRunBudgets(t *testing.T) {
	for name, shape := range shapes(4) {
		t.Run(name, func(t *testing.T) {
			s := newSim(t, shape)
			for i := 0; i < 200; i++ {
				s.flush(2 << 10)
				counts := s.runCounts()
				last := lastPopulated(s.levels)
				for li, c := range counts {
					budget := shape.L0Trigger
					if li > 0 {
						if li >= last {
							budget = shape.Z
						} else {
							budget = shape.K
						}
					}
					if c > budget {
						t.Fatalf("after flush %d: level %d has %d runs, budget %d (%v)",
							i, li, c, budget, counts)
					}
				}
			}
		})
	}
}

func TestWriteAmpOrdering(t *testing.T) {
	// The tutorial's central tradeoff: tiering writes less than lazy
	// leveling, which writes less than leveling.
	amps := map[string]float64{}
	for name, shape := range shapes(4) {
		s := newSim(t, shape)
		for i := 0; i < 300; i++ {
			s.flush(2 << 10)
		}
		amps[name] = s.writeAmp()
	}
	if !(amps["tiering"] < amps["lazy"] && amps["lazy"] <= amps["leveling"]) {
		t.Errorf("write amp ordering violated: %v", amps)
	}
}

func TestReadCostOrdering(t *testing.T) {
	// Run count (what a zero-result point lookup probes) must order the
	// opposite way from write amp: leveling <= lazy <= tiering. A single
	// post-drain snapshot is noisy, so compare the average over the whole
	// workload.
	runs := map[string]float64{}
	lastLevelRuns := map[string]float64{}
	for name, shape := range shapes(4) {
		s := newSim(t, shape)
		total, lastTotal := 0, 0
		const flushes = 300
		for i := 0; i < flushes; i++ {
			s.flush(2 << 10)
			counts := s.runCounts()
			for _, c := range counts {
				total += c
			}
			lastTotal += counts[lastPopulated(s.levels)]
		}
		runs[name] = float64(total) / flushes
		lastLevelRuns[name] = float64(lastTotal) / flushes
	}
	// Leveling probes the fewest runs.
	if !(runs["leveling"] <= runs["lazy"] && runs["leveling"] <= runs["tiering"]) {
		t.Errorf("leveling not cheapest to read: %v", runs)
	}
	// Lazy leveling's defining structural property: its last level stays
	// a single run while tiering's accumulates several. (The total-count
	// lazy-vs-tiering comparison depends on duplicate collapse, which the
	// structural sim does not model; the engine-level E2 bench measures
	// it.)
	if lastLevelRuns["lazy"] >= lastLevelRuns["tiering"] {
		t.Errorf("lazy last level (%v runs avg) not below tiering (%v)",
			lastLevelRuns["lazy"], lastLevelRuns["tiering"])
	}
}

func TestHigherSizeRatioLowersRunCountUnderTiering(t *testing.T) {
	totalRuns := func(T int) int {
		shape := Shape{SizeRatio: T, K: T - 1, Z: T - 1, L0Trigger: 2, BaseBytes: 4 << 10, MaxLevels: 6}
		s := newSim(t, shape)
		for i := 0; i < 200; i++ {
			s.flush(2 << 10)
		}
		n := 0
		for _, c := range s.runCounts() {
			n += c
		}
		return n
	}
	// Larger T means fewer levels; under tiering the worst-case run count
	// per level grows but depth shrinks. Just verify both settle and the
	// structures differ — the full tradeoff is exercised in E1.
	a, b := totalRuns(3), totalRuns(8)
	if a <= 0 || b <= 0 {
		t.Errorf("degenerate run counts: T=3 %d, T=8 %d", a, b)
	}
}

func TestSingleFileGranularityMovesOneFile(t *testing.T) {
	shape := Shape{
		SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10,
		MaxLevels: 6, Granularity: SingleFile, Picker: PickMinOverlap,
	}
	p, err := NewPicker(shape)
	if err != nil {
		t.Fatal(err)
	}
	mkFile := func(num uint64, lo, hi string, size uint64) FileView {
		return FileView{Num: num, Size: size, Smallest: []byte(lo), Largest: []byte(hi), Entries: 10, Seq: num}
	}
	levels := make([]LevelView, 6)
	// Level 1 oversized with three files; level 2 has overlap for two.
	levels[1].Runs = []RunView{{Files: []FileView{
		mkFile(1, "a", "c", 8<<10),
		mkFile(2, "d", "f", 8<<10),
		mkFile(3, "g", "i", 8<<10),
	}}}
	levels[2].Runs = []RunView{{Files: []FileView{
		mkFile(4, "a", "b", 4<<10),
		mkFile(5, "e", "h", 4<<10),
	}}}
	task := p.Pick(levels)
	if task == nil {
		t.Fatal("expected a task for oversized L1")
	}
	if len(task.InputFiles) != 1 {
		t.Fatalf("single-file granularity moved %d files", len(task.InputFiles))
	}
	if task.FromLevel != 1 || task.TargetLevel != 2 {
		t.Fatalf("unexpected levels: %d -> %d", task.FromLevel, task.TargetLevel)
	}
}

func TestMinOverlapPicksCheapestFile(t *testing.T) {
	shape := Shape{
		SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10,
		MaxLevels: 6, Granularity: SingleFile, Picker: PickMinOverlap,
	}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 6)
	levels[1].Runs = []RunView{{Files: []FileView{
		{Num: 1, Size: 8 << 10, Smallest: []byte("a"), Largest: []byte("c"), Seq: 1},
		{Num: 2, Size: 8 << 10, Smallest: []byte("d"), Largest: []byte("f"), Seq: 2},
	}}}
	// Level 2 stays under its capacity so level 1 is the urgent one.
	levels[2].Runs = []RunView{{Files: []FileView{
		{Num: 3, Size: 8 << 10, Smallest: []byte("a"), Largest: []byte("c"), Seq: 3},
	}}}
	task := p.Pick(levels)
	if task == nil {
		t.Fatal("expected task")
	}
	// File 2 has zero overlap; min-overlap must pick it.
	if task.InputFiles[0].Num != 2 {
		t.Errorf("min-overlap picked file %d, want 2", task.InputFiles[0].Num)
	}
	if len(task.TargetFiles) != 0 {
		t.Errorf("picked file should have no target overlap, got %d files", len(task.TargetFiles))
	}
}

func TestMostTombstonesPicker(t *testing.T) {
	shape := Shape{
		SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10,
		MaxLevels: 6, Granularity: SingleFile, Picker: PickMostTombstones,
	}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 6)
	levels[1].Runs = []RunView{{Files: []FileView{
		{Num: 1, Size: 8 << 10, Smallest: []byte("a"), Largest: []byte("c"), Entries: 100, Tombstones: 5, Seq: 1},
		{Num: 2, Size: 8 << 10, Smallest: []byte("d"), Largest: []byte("f"), Entries: 100, Tombstones: 90, Seq: 2},
	}}}
	task := p.Pick(levels)
	if task == nil || task.InputFiles[0].Num != 2 {
		t.Errorf("most-tombstones must pick file 2, got %+v", task)
	}
}

func TestOldestPicker(t *testing.T) {
	shape := Shape{
		SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10,
		MaxLevels: 6, Granularity: SingleFile, Picker: PickOldest,
	}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 6)
	levels[1].Runs = []RunView{{Files: []FileView{
		{Num: 5, Size: 8 << 10, Smallest: []byte("a"), Largest: []byte("c"), Seq: 9},
		{Num: 6, Size: 8 << 10, Smallest: []byte("d"), Largest: []byte("f"), Seq: 2},
	}}}
	task := p.Pick(levels)
	if task == nil || task.InputFiles[0].Num != 6 {
		t.Errorf("oldest must pick file 6 (seq 2), got %+v", task)
	}
}

func TestRoundRobinCursorCycles(t *testing.T) {
	shape := Shape{
		SizeRatio: 4, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10,
		MaxLevels: 6, Granularity: SingleFile, Picker: PickRoundRobin,
	}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 6)
	levels[1].Runs = []RunView{{Files: []FileView{
		{Num: 1, Size: 8 << 10, Smallest: []byte("a"), Largest: []byte("c"), Seq: 1},
		{Num: 2, Size: 8 << 10, Smallest: []byte("d"), Largest: []byte("f"), Seq: 2},
		{Num: 3, Size: 8 << 10, Smallest: []byte("g"), Largest: []byte("i"), Seq: 3},
	}}}
	var picked []uint64
	for i := 0; i < 3; i++ {
		task := p.Pick(levels)
		if task == nil {
			t.Fatal("expected task")
		}
		picked = append(picked, task.InputFiles[0].Num)
	}
	if picked[0] == picked[1] && picked[1] == picked[2] {
		t.Errorf("round-robin picked the same file thrice: %v", picked)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	s := Shape{SizeRatio: 4, K: 3, Z: 1, Granularity: SingleFile}
	if err := s.Validate(); err == nil {
		t.Error("single-file granularity with K>1 must be rejected")
	}
	// Defaults fill in.
	var d Shape
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.SizeRatio != 10 || d.K != 1 || d.Z != 1 || d.MaxLevels < 2 {
		t.Errorf("defaults wrong: %+v", d)
	}
	// K and Z clamp to T-1.
	c := Shape{SizeRatio: 4, K: 99, Z: 99}
	c.Validate()
	if c.K != 3 || c.Z != 3 {
		t.Errorf("K/Z not clamped: %+v", c)
	}
}

func TestLevelCapacityGeometric(t *testing.T) {
	s := Shape{SizeRatio: 10, BaseBytes: 1 << 20}
	s.Validate()
	if got := s.LevelCapacity(1); got != 1<<20 {
		t.Errorf("L1 capacity %d", got)
	}
	if got := s.LevelCapacity(3); got != 100<<20 {
		t.Errorf("L3 capacity %d", got)
	}
	if got := s.LevelCapacity(0); got != 0 {
		t.Errorf("L0 capacity %d", got)
	}
}

func TestEmptyTreeNoTask(t *testing.T) {
	p, _ := NewPicker(Shape{SizeRatio: 4, K: 1, Z: 1, BaseBytes: 4 << 10, MaxLevels: 4})
	if task := p.Pick(make([]LevelView, 4)); task != nil {
		t.Errorf("empty tree produced task: %+v", task)
	}
	if task := p.Pick(nil); task != nil {
		t.Errorf("nil levels produced task: %+v", task)
	}
}

func TestBottomLevelSelfMerge(t *testing.T) {
	shape := Shape{SizeRatio: 4, K: 3, Z: 3, L0Trigger: 2, BaseBytes: 1 << 10, MaxLevels: 3}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 3)
	// Deepest allowed level exceeds its run budget.
	for i := 0; i < 4; i++ {
		levels[2].Runs = append(levels[2].Runs, RunView{Files: []FileView{
			{Num: uint64(i + 1), Size: 1 << 20, Smallest: []byte("a"), Largest: []byte("z"), Seq: uint64(i + 1)},
		}})
	}
	task := p.Pick(levels)
	if task == nil {
		t.Fatal("expected bottom self-merge")
	}
	if task.FromLevel != 2 || task.TargetLevel != 2 || !task.FreshRun {
		t.Errorf("unexpected task: %+v", task)
	}
	if len(task.InputFiles) != 4 {
		t.Errorf("self-merge must take all runs, got %d", len(task.InputFiles))
	}
}

func TestOverlapHelpers(t *testing.T) {
	if !Overlaps([]byte("a"), []byte("c"), []byte("b"), []byte("d")) {
		t.Error("overlapping ranges reported disjoint")
	}
	if Overlaps([]byte("a"), []byte("b"), []byte("c"), []byte("d")) {
		t.Error("disjoint ranges reported overlapping")
	}
	// Touching endpoints overlap (inclusive bounds).
	if !Overlaps([]byte("a"), []byte("b"), []byte("b"), []byte("c")) {
		t.Error("touching ranges must overlap")
	}
	run := RunView{Files: []FileView{
		{Num: 1, Smallest: []byte("a"), Largest: []byte("c")},
		{Num: 2, Smallest: []byte("d"), Largest: []byte("f")},
		{Num: 3, Smallest: []byte("g"), Largest: []byte("i")},
	}}
	got := OverlappingFiles(run, []byte("e"), []byte("h"))
	if len(got) != 2 || got[0].Num != 2 || got[1].Num != 3 {
		t.Errorf("OverlappingFiles returned %+v", got)
	}
}

func TestTaskInputBytes(t *testing.T) {
	task := Task{
		InputFiles:  []FileView{{Size: 100}, {Size: 200}},
		TargetFiles: []FileView{{Size: 300}},
	}
	if got := task.InputBytes(); got != 600 {
		t.Errorf("InputBytes=%d want 600", got)
	}
}

func TestSimWriteAmpGrowsWithGreedierMerging(t *testing.T) {
	// Within leveling, write amplification behaves as (T+1)/2 per level
	// over log_T(N) levels, i.e. proportional to (T+1)/ln T — increasing
	// for T beyond ~2.6. Compare two points on the increasing side: T=16
	// must amplify more than T=4. (T=2 vs T=8 would be a wash: the
	// coefficient (T+1)/ln T is coincidentally equal at those points.)
	// Deep MaxLevels so the T=2 tree is not truncated by the level cap.
	amp := func(T int) float64 {
		shape := Shape{SizeRatio: T, K: 1, Z: 1, L0Trigger: 2, BaseBytes: 4 << 10, MaxLevels: 12}
		s := newSim(t, shape)
		// Enough flushes that the deepest level cycles several times and
		// the asymptotic T·L/2 behavior dominates the warm-up.
		for i := 0; i < 3000; i++ {
			s.flush(2 << 10)
		}
		return s.writeAmp()
	}
	small, large := amp(4), amp(16)
	if large <= small {
		t.Errorf("write amp at T=16 (%.1f) not above T=4 (%.1f)", large, small)
	}
}

func ExamplePicker() {
	shape := Shape{SizeRatio: 4, K: 1, Z: 1, L0Trigger: 1, BaseBytes: 1 << 10, MaxLevels: 4}
	p, _ := NewPicker(shape)
	levels := make([]LevelView, 4)
	levels[0].Runs = []RunView{
		{Files: []FileView{{Num: 1, Size: 512, Smallest: []byte("a"), Largest: []byte("m"), Seq: 1}}},
		{Files: []FileView{{Num: 2, Size: 512, Smallest: []byte("k"), Largest: []byte("z"), Seq: 2}}},
	}
	task := p.Pick(levels)
	fmt.Printf("L%d -> L%d files=%d fresh=%v\n",
		task.FromLevel, task.TargetLevel, len(task.InputFiles), task.FreshRun)
	// Output: L0 -> L1 files=2 fresh=true
}

package cost

import "math"

// Memory-allocation models (tutorial Module II-v): a fixed memory budget
// must be split between the write buffer, the Bloom filters, and the
// block cache. Monkey showed the buffer/filter split has an interior
// optimum; Luo & Carey extended the reasoning to the cache.

// MemorySplit is one division of the memory budget.
type MemorySplit struct {
	BufferBytes float64
	FilterBytes float64
	CacheBytes  float64
}

// SplitCost evaluates the workload cost of a system whose memory is
// divided per split, holding everything else in sys fixed. The cache is
// modeled with the standard concave hit-rate approximation: a cache of c
// bytes over a working set of W bytes with Zipf-skew theta captures
// roughly (c/W)^(1-theta) of accesses.
func SplitCost(sys System, d Design, w Workload, split MemorySplit, workingSetBytes, zipfTheta float64) float64 {
	s := sys
	s.BufferBytes = math.Max(split.BufferBytes, 4096)
	if s.N > 0 {
		s.FilterBitsPerKey = split.FilterBytes * 8 / s.N
	}
	m := Model{Sys: s}
	base := m.Cost(d, w)
	if split.CacheBytes <= 0 || workingSetBytes <= 0 {
		return base
	}
	frac := split.CacheBytes / workingSetBytes
	if frac > 1 {
		frac = 1
	}
	hit := math.Pow(frac, 1-clamp01(zipfTheta))
	// The cache absorbs that fraction of read I/Os.
	readShare := w.PointLookups + w.ZeroLookups + w.RangeLookups
	w2 := w.Normalize()
	readCost := w2.PointLookups*m.PointLookupCost(d) +
		w2.ZeroLookups*m.ZeroLookupCost(d) +
		w2.RangeLookups*m.RangeLookupCost(d, w2.RangeSelectivity)
	_ = readShare
	return base - hit*readCost
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.99 {
		return 0.99
	}
	return x
}

// OptimizeSplit sweeps buffer/filter/cache fractions on a grid and
// returns the best split for the workload. Total memory is in bytes.
func OptimizeSplit(sys System, d Design, w Workload, totalBytes, workingSetBytes, zipfTheta float64) (MemorySplit, float64) {
	best := MemorySplit{BufferBytes: totalBytes}
	bestCost := math.Inf(1)
	const steps = 20
	for bi := 1; bi < steps; bi++ {
		for fi := 0; fi < steps-bi; fi++ {
			ci := steps - bi - fi
			split := MemorySplit{
				BufferBytes: totalBytes * float64(bi) / steps,
				FilterBytes: totalBytes * float64(fi) / steps,
				CacheBytes:  totalBytes * float64(ci) / steps,
			}
			c := SplitCost(sys, d, w, split, workingSetBytes, zipfTheta)
			if c < bestCost {
				bestCost = c
				best = split
			}
		}
	}
	return best, bestCost
}

// BufferFilterCurve evaluates the cost along the buffer-vs-filter line
// (no cache), the curve Monkey plots: x = fraction of memory to the
// buffer, returning (fraction, cost) pairs.
func BufferFilterCurve(sys System, d Design, w Workload, totalBytes float64, points int) [][2]float64 {
	if points < 2 {
		points = 2
	}
	out := make([][2]float64, 0, points)
	for i := 1; i < points; i++ {
		frac := float64(i) / float64(points)
		split := MemorySplit{
			BufferBytes: totalBytes * frac,
			FilterBytes: totalBytes * (1 - frac),
		}
		c := SplitCost(sys, d, w, split, 0, 0)
		out = append(out, [2]float64{frac, c})
	}
	return out
}

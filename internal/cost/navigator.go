package cost

import "math"

// Navigator searches the (T, K, Z) design continuum for the cheapest
// design under a workload — the "navigating the LSM design space" of
// Module III-i (Dostoevsky's hybrid continuum; the LSM-bush/Wacky
// direction of per-level run budgets is represented by its K, Z
// endpoints).

// CandidateSpace bounds the search grid.
type CandidateSpace struct {
	// MinT and MaxT bound the size ratio. Defaults 2 and 16.
	MinT, MaxT int
	// FullHybrid, when true, searches every (K, Z) pair; otherwise only
	// the three canonical layouts per T (leveling, tiering, lazy).
	FullHybrid bool
}

func (c *CandidateSpace) defaults() {
	if c.MinT < 2 {
		c.MinT = 2
	}
	if c.MaxT < c.MinT {
		c.MaxT = 16
	}
}

// Candidate pairs a design with its modeled cost.
type Candidate struct {
	Design Design
	Cost   float64
}

// Enumerate lists every candidate design with its cost, cheapest first
// being up to the caller to sort; the slice is in grid order.
func Enumerate(sys System, w Workload, space CandidateSpace) []Candidate {
	space.defaults()
	m := Model{Sys: sys}
	var out []Candidate
	for t := space.MinT; t <= space.MaxT; t++ {
		if space.FullHybrid {
			for k := 1; k <= t-1; k++ {
				for _, z := range []int{1, t - 1} {
					// Z between 1 and T-1 interpolates; the endpoints
					// bound the interesting behavior, and the full sweep
					// of K already exposes the continuum.
					d := Design{T: t, K: k, Z: z}
					out = append(out, Candidate{Design: d, Cost: m.Cost(d, w)})
				}
			}
			continue
		}
		for _, d := range []Design{
			{T: t, K: 1, Z: 1},
			{T: t, K: t - 1, Z: t - 1},
			{T: t, K: t - 1, Z: 1},
		} {
			out = append(out, Candidate{Design: d, Cost: m.Cost(d, w)})
		}
	}
	return out
}

// Navigate returns the cheapest design for the workload.
func Navigate(sys System, w Workload, space CandidateSpace) Candidate {
	best := Candidate{Cost: math.Inf(1)}
	for _, c := range Enumerate(sys, w, space) {
		if c.Cost < best.Cost {
			best = c
		}
	}
	return best
}

// Package cost implements the analytical cost models the tutorial's
// Module III builds on: the classic DAM-model I/O costs of leveled,
// tiered, and lazy-leveled LSM-trees (O'Neil et al.; Dayan & Idreos,
// Dostoevsky), Monkey's optimal filter-memory allocation, the
// buffer-vs-filter-vs-cache memory split, workload-aware design
// navigation across the (T, K, Z) continuum, and Endure-style robust
// tuning under workload uncertainty.
//
// Costs are expressed in expected storage I/Os per operation, the unit
// every surveyed paper reasons in. N is entries, E bytes/entry, B
// entries/page, and the tree shape follows the compaction.Shape
// convention (size ratio T, K runs per inner level, Z at the last level).
package cost

import (
	"fmt"
	"math"

	"lsmkv/internal/filter"
)

// Workload is an operation mix, as fractions summing to ~1.
type Workload struct {
	// Writes is the fraction of inserts/updates/deletes.
	Writes float64
	// PointLookups is the fraction of gets on existing keys.
	PointLookups float64
	// ZeroLookups is the fraction of gets on absent keys.
	ZeroLookups float64
	// RangeLookups is the fraction of range scans.
	RangeLookups float64
	// RangeSelectivity is the expected fraction of N returned per scan.
	RangeSelectivity float64
}

// Normalize scales the mix to sum to 1.
func (w Workload) Normalize() Workload {
	s := w.Writes + w.PointLookups + w.ZeroLookups + w.RangeLookups
	if s <= 0 {
		return Workload{Writes: 1}
	}
	w.Writes /= s
	w.PointLookups /= s
	w.ZeroLookups /= s
	w.RangeLookups /= s
	return w
}

// System fixes the data and hardware parameters of the model.
type System struct {
	// N is the number of distinct entries.
	N float64
	// EntryBytes is the average entry size.
	EntryBytes float64
	// PageBytes is the storage page size (the DAM block).
	PageBytes float64
	// BufferBytes is the write buffer capacity.
	BufferBytes float64
	// FilterBitsPerKey is the average Bloom budget (0 = no filters).
	FilterBitsPerKey float64
	// MonkeyAllocation applies Monkey's optimal per-level allocation
	// instead of uniform bits/key.
	MonkeyAllocation bool
}

// EntriesPerPage returns B.
func (s System) EntriesPerPage() float64 {
	if s.EntryBytes <= 0 || s.PageBytes <= 0 {
		return 1
	}
	b := s.PageBytes / s.EntryBytes
	if b < 1 {
		return 1
	}
	return b
}

// BufferEntries returns the buffer capacity in entries.
func (s System) BufferEntries() float64 {
	if s.EntryBytes <= 0 {
		return 1
	}
	e := s.BufferBytes / s.EntryBytes
	if e < 1 {
		return 1
	}
	return e
}

// Design is a point in the LSM design space.
type Design struct {
	// T is the size ratio between adjacent levels (>= 2).
	T int
	// K is the run budget of inner levels (1..T-1).
	K int
	// Z is the run budget of the last level (1..T-1).
	Z int
}

func (d Design) String() string {
	switch {
	case d.K == 1 && d.Z == 1:
		return fmt.Sprintf("leveling(T=%d)", d.T)
	case d.K == d.T-1 && d.Z == d.T-1:
		return fmt.Sprintf("tiering(T=%d)", d.T)
	case d.K == d.T-1 && d.Z == 1:
		return fmt.Sprintf("lazy-leveling(T=%d)", d.T)
	default:
		return fmt.Sprintf("hybrid(T=%d,K=%d,Z=%d)", d.T, d.K, d.Z)
	}
}

// Levels returns the number of storage levels L = ceil(log_T(N·E/buffer)).
func (s System) Levels(t int) float64 {
	if t < 2 {
		t = 2
	}
	ratio := s.N * s.EntryBytes / math.Max(s.BufferBytes, 1)
	if ratio <= 1 {
		return 1
	}
	return math.Ceil(math.Log(ratio) / math.Log(float64(t)))
}

// Model evaluates operation costs for a design under a system.
type Model struct {
	Sys System
}

// levelSpecs reconstructs the per-level key counts/run counts implied by
// the geometry, for filter allocation.
func (m Model) levelSpecs(d Design) []filter.LevelSpec {
	L := int(m.Sys.Levels(d.T))
	bufKeys := m.Sys.BufferEntries()
	specs := make([]filter.LevelSpec, L)
	remaining := m.Sys.N
	size := bufKeys * float64(d.T)
	for i := 0; i < L; i++ {
		n := size
		if i == L-1 || n > remaining {
			n = remaining
		}
		runs := d.K
		if i == L-1 {
			runs = d.Z
		}
		specs[i] = filter.LevelSpec{Keys: int64(n), Runs: runs}
		remaining -= n
		if remaining < 0 {
			remaining = 0
		}
		size *= float64(d.T)
	}
	// Drop trailing empty levels (the geometric capacities can overshoot
	// N before the configured level count runs out).
	for len(specs) > 1 && specs[len(specs)-1].Keys == 0 {
		specs = specs[:len(specs)-1]
	}
	return specs
}

// filterFPRs returns the per-level false-positive rates under the
// system's filter budget and allocation policy.
func (m Model) filterFPRs(d Design) []float64 {
	specs := m.levelSpecs(d)
	out := make([]float64, len(specs))
	if m.Sys.FilterBitsPerKey <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	if m.Sys.MonkeyAllocation {
		bits := filter.MonkeyAllocation(specs, m.Sys.FilterBitsPerKey*m.Sys.N)
		for i := range out {
			out[i] = filter.BloomFPR(bits[i])
		}
		return out
	}
	p := filter.BloomFPR(m.Sys.FilterBitsPerKey)
	for i := range out {
		out[i] = p
	}
	return out
}

// WriteCost returns the amortized I/O cost per insert: each entry is
// eventually merged K-ish times per inner level and Z-ish times at the
// last level, divided by the B entries that share each page write
// (Dostoevsky's cost table).
func (m Model) WriteCost(d Design) float64 {
	L := m.Sys.Levels(d.T)
	B := m.Sys.EntriesPerPage()
	t := float64(d.T)
	inner := (L - 1) * (t - 1) / (2 * float64(d.K))
	last := (t - 1) / (2 * float64(d.Z))
	return (inner + last) / B
}

// ZeroLookupCost returns the expected I/Os of a lookup on an absent key:
// one probe per run whose filter false-positives (Monkey's objective).
func (m Model) ZeroLookupCost(d Design) float64 {
	specs := m.levelSpecs(d)
	fprs := m.filterFPRs(d)
	var c float64
	for i, spec := range specs {
		c += float64(spec.Runs) * fprs[i]
	}
	return c
}

// PointLookupCost returns the expected I/Os of a lookup on an existing
// key (assumed resident in the last level, the dominant case): one hit at
// the last level plus false-positive probes above it.
func (m Model) PointLookupCost(d Design) float64 {
	specs := m.levelSpecs(d)
	fprs := m.filterFPRs(d)
	var c float64
	for i := 0; i < len(specs)-1; i++ {
		c += float64(specs[i].Runs) * fprs[i]
	}
	// Expected probes within the last level's Z runs until the hit:
	// (Z+1)/2 on average, at least 1.
	z := float64(d.Z)
	c += math.Max(1, (z+1)/2)
	return c
}

// RangeLookupCost returns the expected I/Os of a range scan touching
// selectivity·N entries: one seek per run plus the pages the result
// spans in the last level(s).
func (m Model) RangeLookupCost(d Design, selectivity float64) float64 {
	L := m.Sys.Levels(d.T)
	B := m.Sys.EntriesPerPage()
	runs := float64(d.K)*(L-1) + float64(d.Z)
	seqPages := selectivity * m.Sys.N / B * float64(d.Z)
	return runs + seqPages
}

// Cost returns the expected I/Os per operation of the workload.
func (m Model) Cost(d Design, w Workload) float64 {
	w = w.Normalize()
	return w.Writes*m.WriteCost(d) +
		w.PointLookups*m.PointLookupCost(d) +
		w.ZeroLookups*m.ZeroLookupCost(d) +
		w.RangeLookups*m.RangeLookupCost(d, w.RangeSelectivity)
}

package cost

import "math"

// Robust tuning (Endure, Huynh et al., VLDB'22): instead of tuning for
// one expected workload, minimize the worst-case cost over a neighborhood
// of workloads around it — trading a little nominal performance for much
// better behavior when the observed workload drifts from the expectation.
//
// The neighborhood here is the set of workloads whose operation-mix
// differs from the expected one by at most rho in L1 distance (mass moved
// between operation types), a simplification of Endure's KL-divergence
// ball that preserves the experiment's shape.

// WorkloadNeighborhood enumerates mixes within L1 distance rho of w,
// sampling `samples` deterministic corner-leaning points. The expected
// workload itself is always included.
func WorkloadNeighborhood(w Workload, rho float64, samples int) []Workload {
	w = w.Normalize()
	out := []Workload{w}
	if rho <= 0 || samples <= 0 {
		return out
	}
	dims := []func(*Workload) *float64{
		func(x *Workload) *float64 { return &x.Writes },
		func(x *Workload) *float64 { return &x.PointLookups },
		func(x *Workload) *float64 { return &x.ZeroLookups },
		func(x *Workload) *float64 { return &x.RangeLookups },
	}
	// Move rho/2 of mass from dimension i to dimension j, for every
	// ordered pair — the extreme points of the L1 ball intersected with
	// the simplex.
	for i := range dims {
		for j := range dims {
			if i == j {
				continue
			}
			x := w
			from := dims[i](&x)
			to := dims[j](&x)
			move := math.Min(rho/2, *from)
			*from -= move
			*to += move
			out = append(out, x.Normalize())
			if len(out) >= samples+1 {
				return out
			}
		}
	}
	return out
}

// RobustTuning holds the outcome of a nominal-vs-robust comparison.
type RobustTuning struct {
	// Nominal is the design minimizing cost at the expected workload.
	Nominal Candidate
	// Robust is the design minimizing the worst case over the
	// neighborhood.
	Robust Candidate
	// NominalWorst is the nominal design's worst cost over the
	// neighborhood (what you risk by tuning to the expectation).
	NominalWorst float64
	// RobustWorst is the robust design's worst cost (its guarantee).
	RobustWorst float64
	// NominalAtExpected and RobustAtExpected are both designs' costs at
	// the expected workload (what robustness costs you when the forecast
	// was right).
	NominalAtExpected float64
	RobustAtExpected  float64
}

// TuneRobust computes the nominal and robust designs for an expected
// workload and an uncertainty radius rho.
func TuneRobust(sys System, expected Workload, rho float64, space CandidateSpace) RobustTuning {
	m := Model{Sys: sys}
	neighborhood := WorkloadNeighborhood(expected, rho, 16)

	worstOf := func(d Design) float64 {
		worst := 0.0
		for _, w := range neighborhood {
			if c := m.Cost(d, w); c > worst {
				worst = c
			}
		}
		return worst
	}

	nominal := Navigate(sys, expected, space)
	robust := Candidate{Cost: math.Inf(1)}
	for _, c := range Enumerate(sys, expected, space) {
		if w := worstOf(c.Design); w < robust.Cost {
			robust = Candidate{Design: c.Design, Cost: w}
		}
	}
	return RobustTuning{
		Nominal:           nominal,
		Robust:            Candidate{Design: robust.Design, Cost: m.Cost(robust.Design, expected)},
		NominalWorst:      worstOf(nominal.Design),
		RobustWorst:       robust.Cost,
		NominalAtExpected: nominal.Cost,
		RobustAtExpected:  m.Cost(robust.Design, expected),
	}
}

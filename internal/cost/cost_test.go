package cost

import (
	"math"
	"testing"
)

func testSystem() System {
	return System{
		N:                10_000_000,
		EntryBytes:       128,
		PageBytes:        4096,
		BufferBytes:      16 << 20,
		FilterBitsPerKey: 10,
	}
}

func designs(t int) (leveled, tiered, lazy Design) {
	return Design{T: t, K: 1, Z: 1},
		Design{T: t, K: t - 1, Z: t - 1},
		Design{T: t, K: t - 1, Z: 1}
}

func TestWriteCostOrdering(t *testing.T) {
	m := Model{Sys: testSystem()}
	leveled, tiered, lazy := designs(10)
	if !(m.WriteCost(tiered) < m.WriteCost(lazy) && m.WriteCost(lazy) < m.WriteCost(leveled)) {
		t.Errorf("write cost ordering violated: tiered=%f lazy=%f leveled=%f",
			m.WriteCost(tiered), m.WriteCost(lazy), m.WriteCost(leveled))
	}
}

func TestLookupCostOrdering(t *testing.T) {
	m := Model{Sys: testSystem()}
	leveled, tiered, lazy := designs(10)
	if !(m.ZeroLookupCost(leveled) <= m.ZeroLookupCost(lazy) &&
		m.ZeroLookupCost(lazy) <= m.ZeroLookupCost(tiered)) {
		t.Errorf("zero lookup ordering violated: leveled=%f lazy=%f tiered=%f",
			m.ZeroLookupCost(leveled), m.ZeroLookupCost(lazy), m.ZeroLookupCost(tiered))
	}
	if !(m.PointLookupCost(leveled) <= m.PointLookupCost(tiered)) {
		t.Errorf("point lookup ordering violated")
	}
	// Lazy leveling's signature: point lookups nearly as cheap as
	// leveling (single last-level run) while writes are nearly as cheap
	// as tiering.
	if m.PointLookupCost(lazy) > m.PointLookupCost(leveled)*1.5 {
		t.Errorf("lazy point lookups too expensive: %f vs leveled %f",
			m.PointLookupCost(lazy), m.PointLookupCost(leveled))
	}
}

func TestFiltersReduceZeroLookupCost(t *testing.T) {
	sys := testSystem()
	leveled, _, _ := designs(10)
	with := Model{Sys: sys}.ZeroLookupCost(leveled)
	sys.FilterBitsPerKey = 0
	without := Model{Sys: sys}.ZeroLookupCost(leveled)
	if with >= without {
		t.Errorf("filters did not reduce zero-lookup cost: %f vs %f", with, without)
	}
	// Without filters, every run is probed.
	L := testSystem().Levels(10)
	if math.Abs(without-L) > 1 {
		t.Errorf("unfiltered zero-lookup cost %f, want ~L=%f", without, L)
	}
}

func TestMonkeyImprovesModelCost(t *testing.T) {
	sysU := testSystem()
	sysU.FilterBitsPerKey = 5
	sysM := sysU
	sysM.MonkeyAllocation = true
	for _, d := range []Design{{T: 10, K: 1, Z: 1}, {T: 4, K: 3, Z: 3}} {
		u := Model{Sys: sysU}.ZeroLookupCost(d)
		mk := Model{Sys: sysM}.ZeroLookupCost(d)
		if mk > u*1.001 {
			t.Errorf("%v: monkey cost %f above uniform %f", d, mk, u)
		}
	}
}

func TestRangeCostGrowsWithSelectivity(t *testing.T) {
	m := Model{Sys: testSystem()}
	d := Design{T: 10, K: 1, Z: 1}
	short := m.RangeLookupCost(d, 1e-7)
	long := m.RangeLookupCost(d, 1e-3)
	if long <= short {
		t.Errorf("range cost did not grow with selectivity: %f vs %f", long, short)
	}
}

func TestLevelsGeometry(t *testing.T) {
	sys := testSystem()
	if l2, l10 := sys.Levels(2), sys.Levels(10); l2 <= l10 {
		t.Errorf("smaller T must give more levels: T=2->%f T=10->%f", l2, l10)
	}
	tiny := System{N: 10, EntryBytes: 10, PageBytes: 4096, BufferBytes: 1 << 20}
	if l := tiny.Levels(10); l != 1 {
		t.Errorf("data smaller than buffer must give 1 level, got %f", l)
	}
}

func TestNavigateMatchesWorkloadLeaning(t *testing.T) {
	sys := testSystem()
	space := CandidateSpace{MinT: 2, MaxT: 12}
	writeHeavy := Navigate(sys, Workload{Writes: 0.95, PointLookups: 0.05}, space)
	readHeavy := Navigate(sys, Workload{Writes: 0.05, PointLookups: 0.7, ZeroLookups: 0.25}, space)

	m := Model{Sys: sys}
	// The write-heavy winner must write cheaper than the read-heavy
	// winner, and vice versa for reads.
	if m.WriteCost(writeHeavy.Design) > m.WriteCost(readHeavy.Design) {
		t.Errorf("write-heavy design %v writes worse than read-heavy %v",
			writeHeavy.Design, readHeavy.Design)
	}
	if m.PointLookupCost(writeHeavy.Design) < m.PointLookupCost(readHeavy.Design) {
		t.Errorf("read-heavy design %v reads worse than write-heavy %v",
			readHeavy.Design, writeHeavy.Design)
	}
	// Write-heavy should choose a tiered-ish layout (K > 1).
	if writeHeavy.Design.K == 1 {
		t.Errorf("write-heavy workload chose %v; expected K>1", writeHeavy.Design)
	}
	// Read-heavy should choose a leveled-ish last level.
	if readHeavy.Design.Z != 1 {
		t.Errorf("read-heavy workload chose %v; expected Z=1", readHeavy.Design)
	}
}

func TestEnumerateFullHybridLarger(t *testing.T) {
	sys := testSystem()
	w := Workload{Writes: 0.5, PointLookups: 0.5}
	canon := Enumerate(sys, w, CandidateSpace{MinT: 2, MaxT: 8})
	hybrid := Enumerate(sys, w, CandidateSpace{MinT: 2, MaxT: 8, FullHybrid: true})
	if len(hybrid) <= len(canon) {
		t.Errorf("full hybrid space (%d) not larger than canonical (%d)", len(hybrid), len(canon))
	}
	// The hybrid winner is never worse than the canonical winner.
	best := func(cs []Candidate) float64 {
		b := math.Inf(1)
		for _, c := range cs {
			if c.Cost < b {
				b = c.Cost
			}
		}
		return b
	}
	if best(hybrid) > best(canon)+1e-12 {
		t.Errorf("hybrid best %f worse than canonical best %f", best(hybrid), best(canon))
	}
}

func TestBufferFilterCurveHasInteriorOptimum(t *testing.T) {
	sys := testSystem()
	w := Workload{Writes: 0.5, ZeroLookups: 0.5}
	curve := BufferFilterCurve(sys, Design{T: 10, K: 1, Z: 1}, w, 64<<20, 32)
	bestIdx, bestCost := -1, math.Inf(1)
	for i, p := range curve {
		if p[1] < bestCost {
			bestCost = p[1]
			bestIdx = i
		}
	}
	if bestIdx <= 0 || bestIdx >= len(curve)-1 {
		t.Errorf("optimum at boundary (idx %d of %d): the buffer/filter split should have an interior optimum",
			bestIdx, len(curve))
	}
}

func TestOptimizeSplitUsesCacheForSkewedReads(t *testing.T) {
	sys := testSystem()
	w := Workload{PointLookups: 0.9, Writes: 0.1}
	working := sys.N * sys.EntryBytes
	split, _ := OptimizeSplit(sys, Design{T: 10, K: 1, Z: 1}, w, 256<<20, working, 0.9)
	if split.CacheBytes <= 0 {
		t.Errorf("highly skewed read workload should allocate cache, got %+v", split)
	}
}

func TestTuneRobustTradeoff(t *testing.T) {
	sys := testSystem()
	expected := Workload{Writes: 0.9, PointLookups: 0.1}
	r := TuneRobust(sys, expected, 0.6, CandidateSpace{MinT: 2, MaxT: 12})
	// The robust design's worst case must not exceed the nominal
	// design's worst case (that is its definition).
	if r.RobustWorst > r.NominalWorst+1e-12 {
		t.Errorf("robust worst %f exceeds nominal worst %f", r.RobustWorst, r.NominalWorst)
	}
	// The nominal design is at least as good at the expected workload.
	if r.NominalAtExpected > r.RobustAtExpected+1e-12 {
		t.Errorf("nominal at expected %f worse than robust %f", r.NominalAtExpected, r.RobustAtExpected)
	}
	// With real uncertainty and a skewed expectation, robustness should
	// actually change the pick and buy a strictly better worst case.
	if r.Nominal.Design == r.Robust.Design {
		t.Logf("note: nominal and robust coincide: %v", r.Nominal.Design)
	} else if r.RobustWorst >= r.NominalWorst {
		t.Errorf("robust pick %v does not improve worst case over %v",
			r.Robust.Design, r.Nominal.Design)
	}
}

func TestWorkloadNeighborhood(t *testing.T) {
	w := Workload{Writes: 0.5, PointLookups: 0.5}
	hood := WorkloadNeighborhood(w, 0.4, 16)
	if len(hood) < 3 {
		t.Fatalf("neighborhood too small: %d", len(hood))
	}
	for i, x := range hood {
		sum := x.Writes + x.PointLookups + x.ZeroLookups + x.RangeLookups
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("neighbor %d not normalized: sum=%f", i, sum)
		}
		if x.Writes < 0 || x.PointLookups < 0 || x.ZeroLookups < 0 || x.RangeLookups < 0 {
			t.Errorf("neighbor %d has negative mass: %+v", i, x)
		}
	}
	// Zero radius returns only the expected workload.
	if got := WorkloadNeighborhood(w, 0, 16); len(got) != 1 {
		t.Errorf("zero radius neighborhood size %d", len(got))
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	w := Workload{}.Normalize()
	if w.Writes != 1 {
		t.Errorf("empty workload should normalize to all-writes: %+v", w)
	}
}

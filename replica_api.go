// replica_api.go: the public replication and online-backup surface —
// checkpoints, the commit stream, replicated applies, sequence waiting,
// and Merkle verification. See internal/replica for the subsystem and
// OPERATIONS.md for the runbook.
package lsmkv

import (
	"time"

	"lsmkv/internal/checkpoint"
	"lsmkv/internal/replica"
	"lsmkv/internal/shard"
)

// CheckpointInfo is the durable record of a completed checkpoint.
type CheckpointInfo = checkpoint.Marker

// MerkleTree is a Merkle summary of the database's logical content at a
// sequence vector.
type MerkleTree = replica.Tree

// CommitHook observes every committed write batch (shard, first
// sequence number, op count, logical WAL payload). It runs under the
// engine lock: copy the payload if retaining it, return quickly.
type CommitHook = shard.CommitHook

// Checkpoint copies a manifest-consistent file set into dstDir without
// pausing writes and commits it with a durable marker; the directory
// then opens as a normal database (online backup, follower bootstrap).
// Sstables are hard-linked when the filesystem supports it.
func (db *DB) Checkpoint(dstDir string) (CheckpointInfo, error) {
	return db.inner.Checkpoint(dstDir)
}

// LastSeqs returns the per-shard applied sequence watermarks: writes
// acked at (shard, seq) are visible once LastSeqs()[shard] >= seq.
func (db *DB) LastSeqs() []uint64 { return db.inner.LastSeqs() }

// WaitForSeq blocks until shard's watermark reaches seq, the timeout
// elapses, or the database closes — the read-your-writes primitive for
// replica reads.
func (db *DB) WaitForSeq(shard int, seq uint64, timeout time.Duration) error {
	return db.inner.WaitForSeq(shard, seq, timeout)
}

// ApplyReplicated applies one replicated WAL record to shard,
// preserving its original sequence numbers; idempotent at or below the
// watermark. Followers apply the primary's commit stream with it.
func (db *DB) ApplyReplicated(shard int, payload []byte) (uint64, error) {
	return db.inner.ApplyReplicated(shard, payload)
}

// SetCommitHook installs fn as the commit-stream observer (nil
// detaches); the replication primary feeds its backlogs from it.
func (db *DB) SetCommitHook(fn CommitHook) { db.inner.SetCommitHook(fn) }

// MerkleAt summarizes the database's logical content at the given
// per-shard sequence vector (nil means the current watermarks). Equal
// trees at equal vectors mean primary and follower hold identical data.
func (db *DB) MerkleAt(buckets int, seqs []uint64) (*MerkleTree, error) {
	if seqs == nil {
		seqs = db.inner.LastSeqs()
	}
	snap, err := db.inner.SnapshotAt(seqs)
	if err != nil {
		return nil, err
	}
	defer snap.Release()
	return replica.BuildTree(buckets, seqs, func(fn func(key, value []byte) bool) error {
		return snap.Scan(nil, nil, fn)
	})
}

package lsmkv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmkv/internal/workload"
)

// TestMultiGetZipfianBatches drives MultiGet with workload-generated
// Zipfian batches — hot keys repeat within a single batch, the way a
// real cache-unfriendly read mix produces them — and holds the batch
// path to the sequential oracle: every batch must return exactly what
// N individual Gets return, across memtable, flushed runs, and absent
// keys. The traced variant must report a per-key read-path trace whose
// filter and cache decisions are populated for keys that went to disk.
func TestMultiGetZipfianBatches(t *testing.T) {
	opts := Default()
	opts.MemtableBytes = 32 << 10 // force flushes: reads span real runs
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const nKeys = 4000
	for i := int64(0); i < nKeys; i++ {
		k := workload.ScrambleKey(i, nKeys)
		if err := db.Put(workload.Key(k), workload.Value(k, 48)); err != nil {
			t.Fatal(err)
		}
	}

	gen := workload.NewKeyGen(workload.Zipfian, nKeys, 0.99, 42)
	const batches, batchSize = 20, 64
	for b := 0; b < batches; b++ {
		keys := make([][]byte, 0, batchSize)
		for len(keys) < batchSize {
			id := gen.Next()
			if len(keys)%8 == 7 {
				// Every eighth slot asks for a key that was never written.
				keys = append(keys, []byte(fmt.Sprintf("absent-%06d", id)))
				continue
			}
			keys = append(keys, workload.Key(id))
		}

		vals, err := db.MultiGet(keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != len(keys) {
			t.Fatalf("batch %d: %d values for %d keys", b, len(vals), len(keys))
		}
		// Oracle: the same keys, one sequential Get each.
		for i, k := range keys {
			want, err := db.Get(k)
			switch {
			case errors.Is(err, ErrNotFound):
				if vals[i] != nil {
					t.Fatalf("batch %d key %q: MultiGet %q, Get says absent", b, k, vals[i])
				}
			case err != nil:
				t.Fatal(err)
			default:
				if vals[i] == nil {
					t.Fatalf("batch %d key %q: MultiGet says absent, Get %q", b, k, want)
				}
				if !bytes.Equal(vals[i], want) {
					t.Fatalf("batch %d key %q: MultiGet %q != Get %q", b, k, vals[i], want)
				}
			}
		}
	}

	// The traced batch: one trace per key, populated even for misses,
	// with per-run filter verdicts and cache accounting for disk probes.
	hot := workload.Key(gen.Next())
	keys := [][]byte{hot, []byte("absent-trace"), hot, workload.Key(0)}
	vals, traces, err := db.MultiGetTraced(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) || len(traces) != len(keys) {
		t.Fatalf("traced batch: %d values, %d traces for %d keys", len(vals), len(traces), len(keys))
	}
	probedARun := false
	for i, tr := range traces {
		if tr == nil {
			t.Fatalf("key %d (%q): nil trace", i, keys[i])
		}
		if vals[i] != nil && tr.Source == "" {
			t.Fatalf("key %q found but trace names no source:\n%s", keys[i], tr.String())
		}
		for _, r := range tr.Runs {
			if r.Decision == "" {
				t.Fatalf("key %q: run (L%d r%d) probed without a decision:\n%s",
					keys[i], r.Level, r.Run, tr.String())
			}
			if r.Filter != "" {
				probedARun = true
			}
		}
	}
	// The hot key repeats in the batch: both probes must agree.
	if !bytes.Equal(vals[0], vals[2]) {
		t.Fatalf("repeated hot key disagreed within one batch: %q vs %q", vals[0], vals[2])
	}
	if vals[1] != nil {
		t.Fatalf("absent key in traced batch came back %q", vals[1])
	}
	if !probedARun {
		t.Fatal("no trace recorded a filter verdict: reads never reached a sorted run")
	}
}

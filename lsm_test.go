package lsmkv

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lsmkv/internal/iostat"
)

func TestPublicAPIBasics(t *testing.T) {
	db, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get: %q %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := db.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("hello")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestPresetsOpenAndWork(t *testing.T) {
	presets := map[string]*Options{
		"default":         Default(),
		"read-optimized":  ReadOptimized(),
		"write-optimized": WriteOptimized(),
		"balanced":        Balanced(),
		"wisckey":         WiscKey(),
		"no-cache":        Default().DisableCache(),
	}
	for name, opts := range presets {
		t.Run(name, func(t *testing.T) {
			opts.MemtableBytes = 16 << 10 // force flushes at test scale
			db, err := Open(t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			const n = 2000
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key%06d", i))
				if err := db.Put(k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 37 {
				k := []byte(fmt.Sprintf("key%06d", i))
				v, err := db.Get(k)
				if err != nil || len(v) != 64 {
					t.Fatalf("Get(%s): %v len=%d", k, err, len(v))
				}
			}
			count := 0
			db.Scan([]byte("key"), []byte("kez"), func(k, v []byte) bool {
				count++
				return true
			})
			if count != n {
				t.Fatalf("scan saw %d keys want %d", count, n)
			}
			if db.TotalRuns() == 0 && db.Levels() == nil {
				t.Error("metrics empty after load")
			}
		})
	}
}

func TestPublicSnapshot(t *testing.T) {
	db, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))
	v, err := snap.Get([]byte("k"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("snapshot Get: %q %v", v, err)
	}
	n := 0
	snap.Scan([]byte("a"), []byte("z"), func(k, v []byte) bool {
		if string(v) != "v1" {
			t.Errorf("snapshot scan saw %q", v)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("snapshot scan count %d", n)
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), &Options{Layout: "bogus"}); err == nil {
		t.Error("bogus layout accepted")
	}
	if _, err := Open(t.TempDir(), &Options{Layout: Tiered, PartialCompaction: true}); err == nil {
		t.Error("partial compaction with tiered layout accepted")
	}
}

func TestStatsExposed(t *testing.T) {
	opts := Default()
	opts.MemtableBytes = 8 << 10
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 64))
	}
	db.Compact()
	for i := 0; i < 100; i++ {
		db.Get([]byte(fmt.Sprintf("k%06d", i)))
	}
	s := db.Stats()
	if s.PointLookups != 100 || s.Flushes == 0 || s.BytesFlushed == 0 {
		t.Errorf("stats implausible: %+v", s)
	}
}

func TestHybridKZFacade(t *testing.T) {
	opts := &Options{SizeRatio: 6, HybridK: 3, HybridZ: 2, MemtableBytes: 16 << 10}
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), bytes.Repeat([]byte{byte(i)}, 64))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i += 101 {
		if _, err := db.Get([]byte(fmt.Sprintf("key%06d", i))); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestSharedStatsHandle(t *testing.T) {
	stats := &iostat.Stats{}
	opts := Default()
	opts.Stats = stats
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	db.Get([]byte("k"))
	if stats.PointLookups.Load() != 1 {
		t.Errorf("caller-provided stats not wired: %d", stats.PointLookups.Load())
	}
}

func TestThrottleFacade(t *testing.T) {
	opts := Default()
	opts.CompactionMaxBytesPerSec = 1 << 30 // effectively unlimited: just exercise plumbing
	opts.MemtableBytes = 16 << 10
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key%06d", i)), bytes.Repeat([]byte("v"), 64))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
}

module lsmkv

go 1.22

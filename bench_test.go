package lsmkv

// One testing.B benchmark per experiment in DESIGN.md's index (E1–E12).
// `go test -bench=. -benchmem` regenerates the per-operation numbers; the
// richer multi-row tables behind each experiment come from cmd/lsmbench,
// which sweeps parameters and prints claim-shaped tables. Custom metrics
// (write-amp, reads/op) are attached via b.ReportMetric so the benchmark
// output carries the units the tutorial's claims are stated in.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"lsmkv/internal/cost"
	"lsmkv/internal/filter"
	"lsmkv/internal/learned"
	"lsmkv/internal/workload"
)

const (
	benchKeys  = 20_000
	benchValue = 64
)

// benchDB loads a database with scrambled sequential keys.
func benchDB(b *testing.B, opts *Options) *DB {
	b.Helper()
	opts.MemtableBytes = 64 << 10
	db, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for i := int64(0); i < benchKeys; i++ {
		k := workload.ScrambleKey(i, benchKeys)
		if err := db.Put(workload.Key(k), workload.Value(k, benchValue)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkE1ReadWriteTradeoff: ingestion under leveling vs tiering across
// size ratios, reporting write amplification alongside ns/op.
func BenchmarkE1ReadWriteTradeoff(b *testing.B) {
	for _, layout := range []Layout{Leveled, Tiered} {
		for _, ratio := range []int{4, 10} {
			b.Run(fmt.Sprintf("%s/T=%d", layout, ratio), func(b *testing.B) {
				opts := &Options{Layout: layout, SizeRatio: ratio, MemtableBytes: 64 << 10}
				opts.DisableCache()
				db, err := Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k := workload.ScrambleKey(int64(i), benchKeys)
					if err := db.Put(workload.Key(k), workload.Value(k, benchValue)); err != nil {
						b.Fatal(err)
					}
				}
				db.Compact()
				b.ReportMetric(db.Stats().WriteAmplification(), "write-amp")
			})
		}
	}
}

// BenchmarkE2Layouts: point lookups against the three canonical layouts.
func BenchmarkE2Layouts(b *testing.B) {
	for _, layout := range []Layout{Leveled, LazyLeveled, Tiered} {
		b.Run(string(layout), func(b *testing.B) {
			opts := &Options{Layout: layout, SizeRatio: 6}
			opts.DisableCache()
			db := benchDB(b, opts)
			before := db.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Get(workload.Key(workload.ScrambleKey(int64(i)%benchKeys, benchKeys)))
			}
			b.StopTimer()
			d := db.Stats().Sub(before)
			b.ReportMetric(float64(d.BlockReads)/float64(b.N), "reads/op")
		})
	}
}

// BenchmarkE3BloomMonkey: zero-result lookups under uniform vs Monkey
// filter allocation at a tight budget.
func BenchmarkE3BloomMonkey(b *testing.B) {
	for _, monkey := range []bool{false, true} {
		name := "uniform"
		if monkey {
			name = "monkey"
		}
		b.Run(name, func(b *testing.B) {
			opts := &Options{SizeRatio: 4, BitsPerKey: 5, MonkeyFilters: monkey}
			opts.DisableCache()
			db := benchDB(b, opts)
			before := db.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Get([]byte(fmt.Sprintf("user%012dx", i%benchKeys)))
			}
			b.StopTimer()
			d := db.Stats().Sub(before)
			b.ReportMetric(float64(d.BlockReads)/float64(b.N), "reads/op")
		})
	}
}

// BenchmarkE4RangeFilters: empty-range scans per range-filter structure.
func BenchmarkE4RangeFilters(b *testing.B) {
	for _, kind := range []struct {
		name string
		k    RangeFilterKind
	}{
		{"none", RangeFilterNone},
		{"prefix", RangeFilterPrefix},
		{"surf", RangeFilterSuRF},
		{"rosetta", RangeFilterRosetta},
		{"snarf", RangeFilterSNARF},
	} {
		b.Run(kind.name, func(b *testing.B) {
			const stride = 64
			opts := &Options{SizeRatio: 4, RangeFilter: kind.k, PrefixLength: 15, MemtableBytes: 64 << 10}
			opts.DisableCache()
			db, err := Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := int64(0); i < benchKeys; i++ {
				if err := db.Put(workload.Key(i*stride), workload.Value(i, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
			db.Compact()
			before := db.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := workload.ScrambleKey(int64(i), benchKeys-1)*stride + stride/4
				db.Scan(workload.Key(base), workload.Key(base+7), func(k, v []byte) bool { return true })
			}
			b.StopTimer()
			d := db.Stats().Sub(before)
			b.ReportMetric(float64(d.BlockReads)/float64(b.N), "reads/op")
		})
	}
}

// BenchmarkE5CacheInvalidation: Zipfian reads at several cache sizes.
func BenchmarkE5CacheInvalidation(b *testing.B) {
	for _, cacheKiB := range []int64{0, 256, 1024} {
		b.Run(fmt.Sprintf("cache=%dKiB", cacheKiB), func(b *testing.B) {
			opts := &Options{SizeRatio: 4, CacheBytes: cacheKiB << 10}
			if cacheKiB == 0 {
				opts.DisableCache()
			}
			db := benchDB(b, opts)
			zipf := workload.NewKeyGen(workload.Zipfian, benchKeys, 0.99, 7)
			before := db.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.Get(workload.Key(workload.ScrambleKey(zipf.Next(), benchKeys)))
			}
			b.StopTimer()
			d := db.Stats().Sub(before)
			b.ReportMetric(float64(d.BlockReads)/float64(b.N), "reads/op")
			b.ReportMetric(d.CacheHitRate(), "hit-rate")
		})
	}
}

// BenchmarkE6LearnedIndex: fence binary search vs learned models, plus
// the end-to-end effect on table lookups.
func BenchmarkE6LearnedIndex(b *testing.B) {
	n := 200_000
	xs := make([]uint64, n)
	rng := rand.New(rand.NewSource(13))
	v := uint64(0)
	for i := range xs {
		v += uint64(1 + rng.Intn(200))
		xs[i] = v
	}
	b.Run("binary-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := xs[i%n]
			sort.Search(n, func(j int) bool { return xs[j] >= x })
		}
	})
	b.Run("plr", func(b *testing.B) {
		m := learned.BuildPLR(xs, 16)
		b.ReportMetric(float64(m.ApproxMemory()), "model-bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := xs[i%n]
			_, lo, hi := m.Predict(x)
			lo += sort.Search(hi-lo+1, func(j int) bool { return xs[lo+j] >= x })
		}
	})
	b.Run("radixspline", func(b *testing.B) {
		m := learned.BuildRadixSpline(xs, 16, 14)
		b.ReportMetric(float64(m.ApproxMemory()), "model-bytes")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := xs[i%n]
			_, lo, hi := m.Predict(x)
			lo += sort.Search(hi-lo+1, func(j int) bool { return xs[lo+j] >= x })
		}
	})
}

// BenchmarkE7MemoryAllocation: mixed workload at two buffer/filter splits
// of one memory budget.
func BenchmarkE7MemoryAllocation(b *testing.B) {
	total := int64(256 << 10)
	for _, bufPct := range []int{20, 80} {
		b.Run(fmt.Sprintf("buffer=%d%%", bufPct), func(b *testing.B) {
			bufBytes := total * int64(bufPct) / 100
			bits := float64(total-bufBytes) * 8 / benchKeys
			opts := &Options{SizeRatio: 4, BitsPerKey: bits, MemtableBytes: bufBytes}
			opts.DisableCache()
			db, err := Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := workload.ScrambleKey(int64(i)%benchKeys, benchKeys)
				if i%4 == 3 {
					db.Get([]byte(fmt.Sprintf("user%012dx", k)))
				} else if err := db.Put(workload.Key(k), workload.Value(k, benchValue)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8KVSeparation: large-value ingestion with and without the
// value log.
func BenchmarkE8KVSeparation(b *testing.B) {
	for _, sep := range []bool{false, true} {
		name := "inline"
		if sep {
			name = "vlog"
		}
		b.Run(name, func(b *testing.B) {
			opts := &Options{SizeRatio: 4, ValueSeparation: sep, ValueThreshold: 128, MemtableBytes: 64 << 10}
			opts.DisableCache()
			db, err := Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			payload := workload.Value(1, 2048)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Put(workload.Key(int64(i%2000)), payload); err != nil {
					b.Fatal(err)
				}
			}
			db.Compact()
			b.ReportMetric(db.Stats().WriteAmplification(), "write-amp")
		})
	}
}

// BenchmarkE9FilePicking: overwrite-heavy ingestion under each partial-
// compaction picking policy.
func BenchmarkE9FilePicking(b *testing.B) {
	for _, p := range []struct {
		name string
		pick FilePicking
	}{
		{"round-robin", PickRoundRobin},
		{"min-overlap", PickMinOverlap},
		{"most-tombstones", PickMostTombstones},
	} {
		b.Run(p.name, func(b *testing.B) {
			opts := &Options{SizeRatio: 4, PartialCompaction: true, FilePicking: p.pick, MemtableBytes: 64 << 10}
			opts.DisableCache()
			db, err := Open(b.TempDir(), opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			rng := workload.NewKeyGen(workload.Zipfian, benchKeys, 0.8, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := workload.ScrambleKey(rng.Next(), benchKeys)
				var err error
				if i%10 == 9 {
					err = db.Delete(workload.Key(k))
				} else {
					err = db.Put(workload.Key(k), workload.Value(k, benchValue))
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			db.Compact()
			b.ReportMetric(db.Stats().WriteAmplification(), "write-amp")
		})
	}
}

// BenchmarkE10RobustTuning: the analytical robust-tuning optimization.
func BenchmarkE10RobustTuning(b *testing.B) {
	sys := cost.System{
		N: 50e6, EntryBytes: 128, PageBytes: 4096,
		BufferBytes: 32 << 20, FilterBitsPerKey: 10, MonkeyAllocation: true,
	}
	expected := cost.Workload{Writes: 0.85, PointLookups: 0.10, ZeroLookups: 0.05}
	space := cost.CandidateSpace{MinT: 2, MaxT: 16, FullHybrid: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cost.TuneRobust(sys, expected, 0.7, space)
		if r.RobustWorst > r.NominalWorst {
			b.Fatal("robust tuning regressed")
		}
	}
}

// BenchmarkE11FilterZoo: membership probes per filter implementation.
func BenchmarkE11FilterZoo(b *testing.B) {
	const n = 100_000
	for _, kind := range []filter.FilterKind{
		filter.KindBloom, filter.KindBlockedBloom, filter.KindCuckoo, filter.KindRibbon,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			p := filter.Policy{Kind: kind, BitsPerKey: 10}
			bu := p.NewBuilder(n)
			for i := 0; i < n; i++ {
				bu.AddHash(filter.HashKey(workload.Key(int64(i))))
			}
			data, err := bu.Finish()
			if err != nil {
				b.Fatal(err)
			}
			r, err := filter.NewReader(data)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data))*8/n, "bits/key")
			probes := make([]filter.KeyHash, 4096)
			for i := range probes {
				probes[i] = filter.HashKey([]byte(fmt.Sprintf("ghost%012d", i)))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MayContainHash(probes[i%len(probes)])
			}
		})
	}
}

// BenchmarkE12SharedHashing: 7-filter lookups with one shared digest vs
// rehashing per filter.
func BenchmarkE12SharedHashing(b *testing.B) {
	const levels = 7
	const n = 20_000
	p := filter.Policy{Kind: filter.KindBloom, BitsPerKey: 10}
	readers := make([]filter.Reader, levels)
	for l := 0; l < levels; l++ {
		bu := p.NewBuilder(n)
		for i := 0; i < n; i++ {
			bu.AddHash(filter.HashKey(workload.Key(int64(l*n + i))))
		}
		data, _ := bu.Finish()
		readers[l], _ = filter.NewReader(data)
	}
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("lookup%032d", i))
	}
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kh := filter.HashKey(keys[i%len(keys)])
			for l := 0; l < levels; l++ {
				readers[l].MayContainHash(kh)
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for l := 0; l < levels; l++ {
				kh := filter.HashKey(keys[i%len(keys)])
				readers[l].MayContainHash(kh)
			}
		}
	})
}

// BenchmarkDBGet guards the observability fast path: with TrackLatency
// off (the default) a point lookup must cost exactly one nil check over
// the uninstrumented read path, so the off/on sub-benchmarks should be
// within noise of each other (the histogram update is ~two atomic adds).
func BenchmarkDBGet(b *testing.B) {
	for _, mode := range []struct {
		name  string
		track bool
	}{
		{"observability-off", false},
		{"observability-on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := Default()
			opts.TrackLatency = mode.track
			db := benchDB(b, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := workload.ScrambleKey(int64(i)%benchKeys, benchKeys)
				if _, err := db.Get(workload.Key(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The append-style read reuses the caller's buffer: with a warm
	// block cache this is the zero-allocation path TestGetAllocs gates
	// (run with -benchmem to see allocs/op).
	b.Run("get-append", func(b *testing.B) {
		db := benchDB(b, Default())
		var dst []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := workload.ScrambleKey(int64(i)%benchKeys, benchKeys)
			v, err := db.GetAppend(workload.Key(k), dst[:0])
			if err != nil {
				b.Fatal(err)
			}
			dst = v
		}
	})
	// Batched point reads at the engine level, batch 64, Zipfian-hot.
	b.Run("multiget-64", func(b *testing.B) {
		db := benchDB(b, Default())
		gen := workload.NewKeyGen(workload.Zipfian, benchKeys, 0.99, 11)
		keys := make([][]byte, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range keys {
				keys[j] = workload.Key(gen.Next() % benchKeys)
			}
			if _, err := db.MultiGet(keys); err != nil {
				b.Fatal(err)
			}
		}
	})
}
